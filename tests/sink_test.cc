// Sink semantics, in particular the Parallel Track counting dedup
// (multi-plan first-emit / last-retract forwarding and discard accounting).

#include <gtest/gtest.h>

#include "exec/sink.h"

namespace jisc {
namespace {

Tuple T(Seq seq, JoinKey key = 7) {
  BaseTuple b;
  b.stream = 0;
  b.key = key;
  b.seq = seq;
  return Tuple::FromBase(b, 0, true);
}

TEST(CountingSinkTest, CountsAndCallback) {
  CountingSink s;
  int cb = 0;
  s.SetCallback([&](const Tuple&, Stamp) { ++cb; });
  s.OnOutput(T(1), 10);
  s.OnOutput(T(2), 11);
  s.OnRetract(T(1), 12);
  EXPECT_EQ(s.outputs(), 2u);
  EXPECT_EQ(s.retractions(), 1u);
  EXPECT_EQ(cb, 2);
}

TEST(CollectingSinkTest, StoresOutputsAndStamps) {
  CollectingSink s;
  s.OnOutput(T(1), 10);
  s.OnRetract(T(1), 12);
  ASSERT_EQ(s.outputs().size(), 1u);
  ASSERT_EQ(s.output_stamps().size(), 1u);
  EXPECT_EQ(s.output_stamps()[0], 10u);
  EXPECT_EQ(s.retractions().size(), 1u);
  s.Clear();
  EXPECT_TRUE(s.outputs().empty());
}

TEST(CountAggregateSinkTest, NetCount) {
  CountAggregateSink s;
  s.OnOutput(T(1), 1);
  s.OnOutput(T(2), 2);
  s.OnRetract(T(1), 3);
  EXPECT_EQ(s.count(), 1);
}

TEST(GroupCountSinkTest, GroupsEraseAtZero) {
  GroupCountSink s;
  s.OnOutput(T(1, 5), 1);
  s.OnOutput(T(2, 5), 1);
  s.OnOutput(T(3, 9), 1);
  EXPECT_EQ(s.counts().at(5), 2);
  s.OnRetract(T(1, 5), 2);
  s.OnRetract(T(2, 5), 2);
  EXPECT_EQ(s.counts().count(5), 0u);
  EXPECT_EQ(s.counts().at(9), 1);
}

class DedupSinkTest : public ::testing::Test {
 protected:
  DedupSinkTest() : dedup_(&downstream_) {}
  CollectingSink downstream_;
  DedupSink dedup_;
};

TEST_F(DedupSinkTest, SinglePlanPassThrough) {
  dedup_.OnOutput(T(1), 1);
  dedup_.OnRetract(T(1), 2);
  EXPECT_EQ(downstream_.outputs().size(), 1u);
  EXPECT_EQ(downstream_.retractions().size(), 1u);
  EXPECT_EQ(dedup_.live_size(), 0u);
}

TEST_F(DedupSinkTest, TwoPlansForwardFirstEmitLastRetract) {
  dedup_.OnOutput(T(1), 1);  // plan A
  dedup_.OnOutput(T(1), 1);  // plan B (duplicate)
  EXPECT_EQ(downstream_.outputs().size(), 1u);
  dedup_.OnRetract(T(1), 2);  // plan A retires it
  EXPECT_TRUE(downstream_.retractions().empty());  // B still covers it
  dedup_.OnRetract(T(1), 2);  // plan B retires it
  EXPECT_EQ(downstream_.retractions().size(), 1u);
}

TEST_F(DedupSinkTest, DiscardReleasesShareWithoutRetracting) {
  dedup_.OnOutput(T(1), 1);  // plan A
  dedup_.OnOutput(T(1), 1);  // plan B
  dedup_.NoteDiscard(T(1));  // plan A discarded; B still live
  EXPECT_TRUE(downstream_.retractions().empty());
  dedup_.OnRetract(T(1), 5);  // B finally expires it
  EXPECT_EQ(downstream_.retractions().size(), 1u);
  EXPECT_EQ(dedup_.live_size(), 0u);
}

TEST_F(DedupSinkTest, MixedComboSeenByOnePlanOnly) {
  dedup_.OnOutput(T(1), 1);   // only the old plan produced it
  dedup_.OnRetract(T(1), 3);  // and only the old plan retracts it
  EXPECT_EQ(downstream_.outputs().size(), 1u);
  EXPECT_EQ(downstream_.retractions().size(), 1u);
}

TEST_F(DedupSinkTest, ReEmissionAfterFullRetirementForwardsAgain) {
  dedup_.OnOutput(T(1), 1);
  dedup_.OnRetract(T(1), 2);
  dedup_.OnOutput(T(1), 3);  // window circumstances change; emitted again
  EXPECT_EQ(downstream_.outputs().size(), 2u);
}

TEST_F(DedupSinkTest, ThreePlansOverlapped) {
  // Overlapped transitions: three live plans produce the same result.
  dedup_.OnOutput(T(9), 1);
  dedup_.OnOutput(T(9), 1);
  dedup_.OnOutput(T(9), 1);
  EXPECT_EQ(downstream_.outputs().size(), 1u);
  dedup_.NoteDiscard(T(9));  // oldest plan dropped
  dedup_.OnRetract(T(9), 4);
  EXPECT_TRUE(downstream_.retractions().empty());
  dedup_.OnRetract(T(9), 4);
  EXPECT_EQ(downstream_.retractions().size(), 1u);
}

TEST_F(DedupSinkTest, MetricsChargeDedupChecks) {
  Metrics m;
  dedup_.set_metrics(&m);
  dedup_.OnOutput(T(1), 1);
  dedup_.OnRetract(T(1), 2);
  EXPECT_EQ(m.dedup_checks, 2u);
}

TEST(MetricsTest, AccumulateAndToString) {
  Metrics a;
  a.probes = 3;
  a.outputs = 1;
  Metrics b;
  b.probes = 2;
  b.completions = 4;
  a += b;
  EXPECT_EQ(a.probes, 5u);
  EXPECT_EQ(a.completions, 4u);
  EXPECT_NE(a.ToString().find("probes=5"), std::string::npos);
  EXPECT_GT(a.WorkUnits(), 0u);
  a.Reset();
  EXPECT_EQ(a.probes, 0u);
}

}  // namespace
}  // namespace jisc
