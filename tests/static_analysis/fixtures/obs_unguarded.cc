// Seeded violation [obs-null-discipline]: Observability* dereferenced
// with no dominating null check (the pointer is nullptr when the feature
// is off).
#include "fixture_support.h"

namespace fix {

class ObsUnguardedSink {
 public:
  void Wire(Observability* obs) { obs_ = obs; }

  void OnOutput(uint64_t t0) {
    obs_->output_delay_ns.Record(obs_->trace.NowNs() - t0);
  }

 private:
  Observability* obs_ = nullptr;
};

}  // namespace fix
