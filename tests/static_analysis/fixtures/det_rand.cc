// Seeded violations [determinism]: PRNG draws (rand() and
// std::random_device) in a helper reachable from the deterministic root.
#include "fixture_support.h"

namespace fix {

static uint64_t DetRandSalt() {
  std::random_device rd;
  return rd() + static_cast<uint64_t>(rand());
}

std::string SerializeDeterministicRand() {
  ByteWriter w;
  w.PutU64(DetRandSalt());
  return w.Take();
}

std::string SerializeDeterministic(int tag) {
  (void)tag;
  return SerializeDeterministicRand();
}

}  // namespace fix
