// Clean near-miss [determinism]: a wall-clock read exists, but only in a
// diagnostics function that no deterministic root can reach — reachability
// is what makes it a violation, not the clock read itself.
#include "fixture_support.h"

namespace fix {

uint64_t CleanDiagnosticsNow() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

std::string SerializeDeterministicClean(uint64_t seq) {
  ByteWriter w;
  w.PutU64(seq);
  return w.Take();
}

std::string SerializeDeterministic(uint64_t seq) {
  return SerializeDeterministicClean(seq);
}

}  // namespace fix
