// Seeded violations [obs-null-discipline]: a guard exists but does not
// dominate the dereference — it tests a different pointer, or the deref
// escapes the guarded block.
#include "fixture_support.h"

namespace fix {

class ObsWrongGuard {
 public:
  void RecordBoth(uint64_t v) {
    if (other_ != nullptr) {
      // Guard is on other_, not obs_: still a violation.
      obs_->output_delay_ns.Record(v);
    }
  }

  void RecordAfterBlock(uint64_t v) {
    if (obs_ != nullptr) {
      obs_->output_delay_ns.Record(v);
    }
    // Outside the guarded block: violation.
    obs_->telemetry->AddInput(v);
  }

 private:
  Observability* obs_ = nullptr;
  TelemetryRegistry* other_ = nullptr;
};

}  // namespace fix
