// Seeded violation [determinism]: iteration over an unordered container
// whose hash order leaks into deterministically-serialized bytes — the
// same shape as an engine state export feeding a checkpoint.
#include "fixture_support.h"

namespace fix {

class DetIterState {
 public:
  void Serialize(ByteWriter& w) const {
    for (const auto& kv : buckets_) {
      w.PutU64(kv.first);
      w.PutU64(static_cast<uint64_t>(kv.second));
    }
  }

 private:
  std::unordered_map<uint64_t, int> buckets_;
};

std::string SerializeDeterministic(const DetIterState& st) {
  ByteWriter w;
  st.Serialize(w);
  return w.Take();
}

}  // namespace fix
