// Clean near-miss [lock-order]: two locks, always acquired in the same
// order (including through a helper call) — the acquisition graph has an
// a_ -> b_ edge from two places but no cycle.
#include "fixture_support.h"

namespace fix {

class CleanLockOrder {
 public:
  void Produce() {
    MutexLock lk(&a_);
    MutexLock lk2(&b_);
    ++n_;
  }

  void Consume() {
    MutexLock lk(&a_);
    CleanTouchB();
  }

 private:
  void CleanTouchB() {
    MutexLock lk(&b_);
    --n_;
  }

  Mutex a_;
  Mutex b_;
  int n_ = 0;
};

}  // namespace fix
