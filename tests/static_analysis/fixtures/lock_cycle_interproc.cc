// Seeded violation [lock-order]: the reverse edge hides behind a call —
// Publish holds p_ and calls a helper that takes q_, while Drain holds q_
// and calls a helper that takes p_. Only interprocedural edge extraction
// sees the cycle.
#include "fixture_support.h"

namespace fix {

class LockCycleInterproc {
 public:
  void Publish() {
    MutexLock lk(&p_);
    InterprocTouchQ();
  }

  void Drain() {
    MutexLock lk(&q_);
    InterprocTouchP();
  }

 private:
  void InterprocTouchQ() {
    MutexLock lk(&q_);
    ++nq_;
  }
  void InterprocTouchP() {
    MutexLock lk(&p_);
    ++np_;
  }

  Mutex p_;
  Mutex q_;
  int np_ = 0;
  int nq_ = 0;
};

}  // namespace fix
