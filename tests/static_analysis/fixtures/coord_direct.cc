// Seeded violation [coordinator-only]: a worker loop calls a
// JISC_COORDINATOR_ONLY method directly (the case the regex lint also
// catches — kept to pin parity).
#include "fixture_support.h"

namespace fix {

class CoordDirectExec {
 public:
  JISC_COORDINATOR_ONLY void Barrier() {}

  void WorkerLoop(int shard) {
    (void)shard;
    Barrier();
  }
};

}  // namespace fix
