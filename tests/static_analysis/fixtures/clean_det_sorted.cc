// Clean near-miss [determinism]: the serialization path iterates a sorted
// copy of the unordered state (canonical order), and one residual
// unordered iteration carries a reasoned waiver.
#include "fixture_support.h"

namespace fix {

class CleanDetState {
 public:
  void Serialize(ByteWriter& w) const {
    std::vector<uint64_t> keys;
    keys.reserve(buckets_.size());
    // jisc-verify: allow(determinism) — keys are sorted before serializing
    for (const auto& kv : buckets_) keys.push_back(kv.first);
    SortKeys(keys);
    for (uint64_t k : keys) w.PutU64(k);
  }

 private:
  static void SortKeys(std::vector<uint64_t>& keys) {
    for (size_t i = 1; i < keys.size(); ++i) {
      for (size_t j = i; j > 0 && keys[j - 1] > keys[j]; --j) {
        uint64_t t = keys[j];
        keys[j] = keys[j - 1];
        keys[j - 1] = t;
      }
    }
  }

  std::unordered_map<uint64_t, int> buckets_;
};

std::string SerializeDeterministic(const CleanDetState& st) {
  ByteWriter w;
  st.Serialize(w);
  return w.Take();
}

}  // namespace fix
