// Clean near-miss [coordinator-only]: the worker calls a marked method
// through another object's receiver (that object's own contract mediates
// the call), and a coordinator-side function calls the marked method
// outside any worker region. Neither is a finding.
#include "fixture_support.h"

namespace fix {

class CleanAckQueue {
 public:
  JISC_COORDINATOR_ONLY void Push(int v) { (void)v; }
};

class CleanCoordExec {
 public:
  JISC_COORDINATOR_ONLY void Barrier() {}

  void WorkerLoop(int shard) {
    acks_.Push(shard);  // receiver-qualified: the queue's contract.
  }

  void Drive() {
    Barrier();  // coordinator thread: fine.
  }

 private:
  CleanAckQueue acks_;
};

}  // namespace fix
