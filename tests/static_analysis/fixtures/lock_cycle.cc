// Seeded violation [lock-order]: two functions acquire the same pair of
// locks in opposite orders — the static acquisition graph has the cycle
// a_ -> b_ -> a_.
#include "fixture_support.h"

namespace fix {

class LockCyclePair {
 public:
  void Forward() {
    MutexLock lk(&a_);
    MutexLock lk2(&b_);
    ++n_;
  }

  void Backward() {
    MutexLock lk(&b_);
    MutexLock lk2(&a_);
    --n_;
  }

 private:
  Mutex a_;
  Mutex b_;
  int n_ = 0;
};

}  // namespace fix
