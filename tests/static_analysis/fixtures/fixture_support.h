// Minimal stand-ins for the project types the jisc-verify checks key on.
// The fixtures are analyzed, never linked into the product; they only need
// to parse (textual frontend: token patterns; clang frontend: real AST).
#ifndef JISC_TESTS_STATIC_ANALYSIS_FIXTURES_FIXTURE_SUPPORT_H_
#define JISC_TESTS_STATIC_ANALYSIS_FIXTURES_FIXTURE_SUPPORT_H_

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#define JISC_COORDINATOR_ONLY __attribute__((annotate("jisc_coordinator_only")))
#define JISC_CHECK(cond) \
  if (!(cond)) ::abort(); else (void)0

namespace fix {

struct Histogram {
  void Record(uint64_t) {}
};

struct TraceRecorder {
  uint64_t NowNs() { return 0; }
};

struct TelemetryRegistry {
  void AddInput(uint64_t) {}
  void NoteStall(int) {}
};

struct Observability {
  Histogram output_delay_ns;
  TraceRecorder trace;
  TelemetryRegistry* telemetry = nullptr;
};

class Mutex {
 public:
  void Lock() {}
  void Unlock() {}
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() { mu_->Unlock(); }

 private:
  Mutex* mu_;
};

struct ByteWriter {
  void PutU64(uint64_t) {}
  std::string Take() { return ""; }
};

}  // namespace fix

#endif  // JISC_TESTS_STATIC_ANALYSIS_FIXTURES_FIXTURE_SUPPORT_H_
