// Seeded violation [waiver-syntax]: a jisc-verify waiver without a reason
// is itself a finding — waivers must say why.
#include "fixture_support.h"

namespace fix {

class WaiverNoReason {
 public:
  void Record(uint64_t v) {
    // jisc-verify: allow(obs-null-discipline)
    obs_->output_delay_ns.Record(v);
  }

 private:
  Observability* obs_ = nullptr;
};

}  // namespace fix
