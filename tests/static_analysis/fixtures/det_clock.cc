// Seeded violation [determinism]: a wall-clock read on a path reachable
// from SerializeDeterministic. The clock sits two calls deep so the check
// must walk the call graph, not just the root's body.
#include "fixture_support.h"

namespace fix {

static uint64_t DetClockStampHelper() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

static void DetClockWriteHeader(ByteWriter& w) {
  w.PutU64(DetClockStampHelper());
}

std::string SerializeDeterministic() {
  ByteWriter w;
  DetClockWriteHeader(w);
  return w.Take();
}

}  // namespace fix
