// Clean near-miss [obs-null-discipline]: every dereference is dominated
// by a null check, across all of the repo's guard idioms.
#include "fixture_support.h"

namespace fix {

class CleanObsGuards {
 public:
  void BracedIf(uint64_t v) {
    if (obs_ != nullptr) {
      obs_->output_delay_ns.Record(v);
    }
  }

  void BareIf(uint64_t v) {
    if (obs_) obs_->output_delay_ns.Record(v);
  }

  void EarlyReturn(uint64_t v) {
    if (obs_ == nullptr) return;
    obs_->output_delay_ns.Record(v);
    if (obs_->telemetry != nullptr) obs_->telemetry->AddInput(v);
  }

  uint64_t Ternary() { return obs_ != nullptr ? obs_->trace.NowNs() : 0; }

  void ShortCircuit(uint64_t v) {
    if (obs_ != nullptr && v > 0) obs_->output_delay_ns.Record(v);
  }

  void BoolAlias(uint64_t v) {
    bool timed = obs_ != nullptr && v > 0;
    if (timed) obs_->output_delay_ns.Record(v);
  }

  void Checked(uint64_t v) {
    JISC_CHECK(obs_ != nullptr);
    obs_->output_delay_ns.Record(v);
  }

 private:
  Observability* obs_ = nullptr;
};

}  // namespace fix
