// Seeded violation [coordinator-only]: the coordinator-only call is two
// helpers away from the worker loop. A regex over the worker body cannot
// see this — only the call-graph closure can.
#include "fixture_support.h"

namespace fix {

class CoordTransExec {
 public:
  JISC_COORDINATOR_ONLY void Enqueue(int item) { (void)item; }

  void WorkerLoop(int shard) { CoordTransHelperA(shard); }

 private:
  void CoordTransHelperA(int shard) { CoordTransHelperB(shard); }
  void CoordTransHelperB(int shard) { Enqueue(shard); }
};

}  // namespace fix
