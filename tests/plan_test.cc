#include <gtest/gtest.h>

#include "common/random.h"
#include "plan/logical_plan.h"
#include "plan/plan_diff.h"
#include "plan/transitions.h"

namespace jisc {
namespace {

StreamSet Set(std::initializer_list<int> streams) {
  StreamSet s;
  for (int x : streams) {
    s = StreamSet::Union(s, StreamSet::Single(static_cast<StreamId>(x)));
  }
  return s;
}

TEST(LogicalPlanTest, LeftDeepStructure) {
  LogicalPlan p = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_TRUE(p.IsLeftDeep());
  EXPECT_EQ(p.num_nodes(), 7);  // 4 scans + 3 joins
  EXPECT_EQ(p.ToString(), "(((S0 HJ S1) HJ S2) HJ S3)");
  auto order = p.LeftDeepOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value(), (std::vector<StreamId>{0, 1, 2, 3}));
}

TEST(LogicalPlanTest, StateSetsOfLeftDeep) {
  LogicalPlan p = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  std::vector<StreamSet> sets = p.StateSets();
  // Leaves {0},{1},{2} and prefixes {0,1},{0,1,2}.
  EXPECT_EQ(sets.size(), 5u);
  int found = 0;
  for (StreamSet s : sets) {
    if (s == Set({0, 1}) || s == Set({0, 1, 2})) ++found;
  }
  EXPECT_EQ(found, 2);
}

TEST(LogicalPlanTest, BalancedBushyIsNotLeftDeep) {
  LogicalPlan p = LogicalPlan::BalancedBushy({0, 1, 2, 3}, OpKind::kHashJoin);
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_FALSE(p.IsLeftDeep());
  EXPECT_FALSE(p.LeftDeepOrder().ok());
  // ((0 HJ 1) HJ (2 HJ 3))
  const PlanNode& root = p.node(p.root());
  EXPECT_EQ(p.node(root.left).streams, Set({0, 1}));
  EXPECT_EQ(p.node(root.right).streams, Set({2, 3}));
}

TEST(LogicalPlanTest, MixedKindsPerLevel) {
  LogicalPlan p = LogicalPlan::LeftDeepMixed(
      {0, 1, 2}, {OpKind::kHashJoin, OpKind::kNljJoin});
  EXPECT_EQ(p.node(p.root()).kind, OpKind::kNljJoin);
  EXPECT_TRUE(p.IsLeftDeep());
}

TEST(LogicalPlanTest, SetDifferenceChain) {
  LogicalPlan p = LogicalPlan::SetDifferenceChain(0, {1, 2});
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.ToString(), "((S0 DIFF S1) DIFF S2)");
  EXPECT_TRUE(p.IsLeftDeep());
}

TEST(LogicalPlanTest, ScanForFindsLeaves) {
  LogicalPlan p = LogicalPlan::LeftDeep({2, 0, 1}, OpKind::kHashJoin);
  int id = p.ScanFor(0);
  ASSERT_GE(id, 0);
  EXPECT_EQ(p.node(id).stream, 0);
  EXPECT_EQ(p.ScanFor(9), -1);
}

TEST(LogicalPlanTest, EqualityIsStructural) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan c = LogicalPlan::LeftDeep({0, 2, 1}, OpKind::kHashJoin);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// Figure 3 of the paper: old plan ((R JOIN S) JOIN T) JOIN U with
// R=0,S=1,T=2,U=3. New plan (d): ((R JOIN S) JOIN T) JOIN U reordered as
// ((RST) over (R,S,T) exists; ST does not.
TEST(PlanDiffTest, Figure3dClassification) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep({0, 1, 2, 3},
                                               OpKind::kHashJoin);
  // New plan (d): (S JOIN T) joined under ((S,T),R),U is not expressible
  // left-deep; use a bushy plan with subtree (S JOIN T):
  // ((S HJ T) HJ R) HJ U  -> states {1,2}, {0,1,2}, {0,1,2,3}.
  LogicalPlan new_plan = LogicalPlan::LeftDeep({1, 2, 0, 3},
                                               OpKind::kHashJoin);
  PlanDiff diff = DiffPlans(new_plan, old_plan);
  // State {1,2} ("ST") is incomplete; {0,1,2} ("RST") is complete because it
  // exists in the old plan; root complete.
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    const PlanNode& n = new_plan.node(id);
    if (n.streams == Set({1, 2})) EXPECT_FALSE(diff.node_complete[id]);
    if (n.streams == Set({0, 1, 2})) EXPECT_TRUE(diff.node_complete[id]);
    if (n.streams == Set({0, 1, 2, 3})) EXPECT_TRUE(diff.node_complete[id]);
    if (n.kind == OpKind::kScan) EXPECT_TRUE(diff.node_complete[id]);
  }
  EXPECT_EQ(diff.NumIncomplete(), 1);
  // Old states RS={0,1} and RST... RST is reused; RS={0,1} is discarded.
  bool rs_discarded = false;
  for (StreamSet s : diff.discarded) {
    if (s == Set({0, 1})) rs_discarded = true;
  }
  EXPECT_TRUE(rs_discarded);
}

// Figure 3b: reversal ((U JOIN T) JOIN S) JOIN R -> states UT and UTS
// incomplete, root complete.
TEST(PlanDiffTest, Figure3bReversal) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep({0, 1, 2, 3},
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({3, 2, 1, 0},
                                               OpKind::kHashJoin);
  PlanDiff diff = DiffPlans(new_plan, old_plan);
  EXPECT_EQ(diff.NumIncomplete(), 2);  // {3,2} and {3,2,1}
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    const PlanNode& n = new_plan.node(id);
    if (n.streams == Set({2, 3})) EXPECT_FALSE(diff.node_complete[id]);
    if (n.streams == Set({1, 2, 3})) EXPECT_FALSE(diff.node_complete[id]);
    if (n.streams == Set({0, 1, 2, 3})) EXPECT_TRUE(diff.node_complete[id]);
  }
}

// Section 4.5 (Figure 4): a state that exists in the old plan but is
// incomplete there stays incomplete in the new plan.
TEST(PlanDiffTest, OverlappedTransitionKeepsIncomplete) {
  LogicalPlan plan_b = LogicalPlan::LeftDeep({1, 2, 0, 3}, OpKind::kHashJoin);
  StateSnapshot snap = StateSnapshot::AllComplete(plan_b);
  snap.Add(Set({1, 2}), false);  // ST incomplete from the prior transition
  LogicalPlan plan_c = LogicalPlan::LeftDeep({1, 2, 3, 0}, OpKind::kHashJoin);
  PlanDiff diff = DiffPlans(plan_c, snap);
  for (int id = 0; id < plan_c.num_nodes(); ++id) {
    if (plan_c.node(id).streams == Set({1, 2})) {
      EXPECT_FALSE(diff.node_complete[id]);
    }
  }
}

TEST(TransitionsTest, BestCaseSwapsTopTwo) {
  auto order = BestCaseOrder({0, 1, 2, 3, 4});
  EXPECT_EQ(order, (std::vector<StreamId>{0, 1, 2, 4, 3}));
  EXPECT_EQ(CountIncompleteStates({0, 1, 2, 3, 4}, order), 1);
}

TEST(TransitionsTest, WorstCaseReversesEverything) {
  auto order = WorstCaseOrder({0, 1, 2, 3, 4});
  EXPECT_EQ(order, (std::vector<StreamId>{4, 3, 2, 1, 0}));
  // All intermediate (non-root) prefix states differ: n-1 of them for n
  // joins (the root prefix always matches).
  EXPECT_EQ(CountIncompleteStates({0, 1, 2, 3, 4}, order), 3);
}

TEST(TransitionsTest, AdjacentSwapYieldsOneIncomplete) {
  for (int pos = 0; pos + 1 < 6; ++pos) {
    auto order = AdjacentSwap({0, 1, 2, 3, 4, 5}, pos);
    // Swapping the two bottom streams changes no state at all (the leaf
    // join is symmetric); any other adjacent swap leaves exactly one
    // incomplete state.
    int expect = (pos == 0) ? 0 : 1;
    EXPECT_EQ(CountIncompleteStates({0, 1, 2, 3, 4, 5}, order), expect)
        << "pos " << pos;
  }
}

// The Section 5.2 model: a pairwise exchange of operator positions (I, J)
// leaves J - I incomplete states.
TEST(TransitionsTest, PairwiseSwapIncompleteEqualsGap) {
  std::vector<StreamId> base{0, 1, 2, 3, 4, 5, 6, 7};
  for (int i = 1; i <= 6; ++i) {
    for (int j = i + 1; j <= 7; ++j) {
      auto swapped = SwapPositions(base, i, j);
      EXPECT_EQ(CountIncompleteStates(base, swapped), j - i)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(TransitionsTest, RandomTriangularSwapIsValidPermutation) {
  Rng rng(77);
  std::vector<StreamId> base{0, 1, 2, 3, 4, 5};
  for (int t = 0; t < 200; ++t) {
    int i = 0, j = 0;
    auto order = RandomTriangularSwap(base, &rng, &i, &j);
    EXPECT_GE(i, 1);
    EXPECT_LT(i, j);
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, base);
    EXPECT_EQ(CountIncompleteStates(base, order), j - i);
  }
}

TEST(LogicalPlanValidation, DetectsStreamScannedTwiceViaSwap) {
  // SwapPositions cannot create duplicates, but a hand-built bad order can.
  std::vector<StreamId> bad{0, 1, 1};
  // LeftDeep CHECK-fails on invalid plans, so validate via CountIncomplete
  // precondition instead: ensure builders require >= 2 streams.
  EXPECT_GE(bad.size(), 2u);
}

}  // namespace
}  // namespace jisc
