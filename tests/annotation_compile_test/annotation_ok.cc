// Positive control for the negative-compile harness: correct lock
// discipline must compile cleanly under -Wthread-safety -Werror. If this
// file ever fails, the harness flags (not the seeded violations) are what
// broke — which keeps the WILL_FAIL tests honest. It also pulls in the
// annotated production headers, so a thread-safety regression in the
// queues or sinks fails here even before the full build does.

#include <cstdint>

#include "common/bounded_queue.h"
#include "common/mutex.h"
#include "common/spsc_queue.h"
#include "common/thread_annotations.h"
#include "exec/sink.h"

namespace {

class Account {
 public:
  void Deposit(int64_t amount) {
    jisc::MutexLock lk(&mu_);
    balance_ += amount;
  }

  int64_t balance() const {
    jisc::MutexLock lk(&mu_);
    return balance_;
  }

  // The annotated-precondition style: the caller must hold mu_.
  void DepositLocked(int64_t amount) JISC_REQUIRES(mu_) {
    balance_ += amount;
  }

  void DepositTwice(int64_t amount) {
    jisc::MutexLock lk(&mu_);
    DepositLocked(amount);
    DepositLocked(amount);
  }

  // Early-release idiom used by the queues: mutate, drop the lock, notify.
  void DepositAndSignal(int64_t amount) {
    {
      jisc::ReleasableMutexLock lk(&mu_);
      balance_ += amount;
      lk.Release();
    }
    changed_.NotifyOne();
  }

  void WaitForBalance(int64_t at_least) {
    jisc::MutexLock lk(&mu_);
    while (balance_ < at_least) changed_.Wait(&mu_);
  }

 private:
  mutable jisc::Mutex mu_;
  jisc::CondVar changed_;
  int64_t balance_ JISC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  account.DepositTwice(2);
  account.DepositAndSignal(3);
  account.WaitForBalance(8);
  jisc::BoundedQueue<int> mpmc(4);
  int v = 1;
  mpmc.TryPush(v);
  jisc::SpscQueue<int> spsc(4);
  spsc.TryPush(v);
  return account.balance() == 8 ? 0 : 1;
}
