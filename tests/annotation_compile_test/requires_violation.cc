// Seeded -Wthread-safety violation: calls a JISC_REQUIRES method without
// holding the demanded mutex. Compiled by ctest with -Werror=thread-safety
// and expected to FAIL (WILL_FAIL), proving the precondition annotations
// are live.

#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Registry {
 public:
  void InsertLocked() JISC_REQUIRES(mu_) { ++entries_; }

  void Insert() {
    InsertLocked();  // BUG: mu_ not held
  }

 private:
  jisc::Mutex mu_;
  int64_t entries_ JISC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Registry registry;
  registry.Insert();
  return 0;
}
