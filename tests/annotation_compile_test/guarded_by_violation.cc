// Seeded -Wthread-safety violation: writes a JISC_GUARDED_BY field without
// holding its mutex. The ctest case annotation_compile/guarded_by_rejected
// compiles this with -Werror=thread-safety and REQUIRES the compile to
// fail (WILL_FAIL) — if it ever compiles, the annotation wiring has
// silently rotted.

#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int64_t amount) {
    balance_ += amount;  // BUG: mu_ not held
  }

 private:
  jisc::Mutex mu_;
  int64_t balance_ JISC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
