// Seeded coordinator-only contract violation: a worker-thread entry point
// calling a JISC_COORDINATOR_ONLY method. This file is never built; the
// ctest case lint_contracts/coordinator_misuse_rejected runs
// tools/lint_contracts.py over it and REQUIRES a nonzero exit (WILL_FAIL),
// proving the lint actually detects the misuse it exists to catch.

#include <cstdint>

#include "common/thread_annotations.h"

namespace jisc_lint_selftest {

class MiniExecutor {
 public:
  JISC_COORDINATOR_ONLY void Barrier();
  JISC_COORDINATOR_ONLY uint64_t StateMemory() const;

  void WorkerLoop(int shard) {
    (void)shard;
    Barrier();  // BUG: shard thread driving the quiescing barrier
  }
};

}  // namespace jisc_lint_selftest
