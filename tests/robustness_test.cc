// Robustness and fuzz suites: degenerate parameters, back-to-back and
// no-op transitions, and a randomized OperatorState fuzzer checked against
// a simple model.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "migration/moving_state.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

// ---------- OperatorState fuzz vs a model ----------

struct ModelEntry {
  Tuple tuple;
  Stamp insert;
  Stamp remove = kStampInfinity;
};

TEST(OperatorStateFuzzTest, MatchesModelUnderRandomOps) {
  Rng rng(2025);
  OperatorState st(StreamSet::Single(0), StateIndex::kHash);
  std::vector<ModelEntry> model;
  Seq next_seq = 0;
  Stamp stamp = 1;
  for (int step = 0; step < 5000; ++step) {
    ++stamp;
    double dice = rng.UniformDouble();
    if (dice < 0.5) {
      // Insert.
      BaseTuple b;
      b.stream = 0;
      b.key = static_cast<JoinKey>(rng.UniformU64(8));
      b.seq = next_seq++;
      Tuple t = Tuple::FromBase(b, stamp, true);
      st.Insert(t, stamp);
      model.push_back({t, stamp});
    } else if (dice < 0.75 && !model.empty()) {
      // Remove a random live entry.
      size_t idx = rng.UniformU64(model.size());
      if (model[idx].remove == kStampInfinity) {
        const Tuple& t = model[idx].tuple;
        int n = st.RemoveContaining(t.parts()[0].seq, t.key(), stamp,
                                    nullptr);
        EXPECT_EQ(n, 1);
        model[idx].remove = stamp;
      }
    } else if (dice < 0.85) {
      st.VacuumDirty();  // must not change visible content
    } else {
      // Probe a random key at a random stamp and compare to the model.
      JoinKey key = static_cast<JoinKey>(rng.UniformU64(8));
      Stamp p = 2 + rng.UniformU64(stamp);
      std::vector<Tuple> got;
      st.CollectMatches(key, p, &got);
      // Vacuumed entries are only reclaimed when no probe below their
      // removal stamp can occur; the fuzzer probes arbitrary stamps, so
      // compare against the model restricted to not-yet-vacuumed rows:
      // emulate by only checking LIVE-at-p entries that are still live or
      // removed after the last vacuum. To keep the oracle exact, compare
      // multisets of live (remove==inf) entries when p == stamp + 1.
      if (p == stamp + 1) {
        std::multiset<uint64_t> expect;
        for (const auto& e : model) {
          if (e.remove == kStampInfinity && e.tuple.key() == key &&
              e.insert < p) {
            expect.insert(e.tuple.IdentityHash());
          }
        }
        EXPECT_EQ(IdentityMultiset(got), expect) << "step " << step;
      }
    }
    // Continuous invariants.
    size_t live = 0;
    std::set<JoinKey> keys;
    for (const auto& e : model) {
      if (e.remove == kStampInfinity) {
        ++live;
        keys.insert(e.tuple.key());
      }
    }
    ASSERT_EQ(st.live_size(), live) << "step " << step;
    ASSERT_EQ(st.DistinctLiveKeys(), keys.size()) << "step " << step;
  }
}

// ---------- degenerate engine parameters ----------

TEST(RobustnessTest, WindowOfOne) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 1);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(3, 2, 300);
  auto r = testutil::DriveAndCompare(
      &engine, &sink, 3, windows, tuples,
      {{150, LogicalPlan::LeftDeep({2, 1, 0}, OpKind::kHashJoin)}});
  EXPECT_TRUE(r.ok());
}

TEST(RobustnessTest, SingleKeyDomain) {
  // Every tuple shares one key: maximal bucket contention.
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 3);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(3, 1, 200);
  auto r = testutil::DriveAndCompare(
      &engine, &sink, 3, windows, tuples,
      {{100, LogicalPlan::LeftDeep({1, 2, 0}, OpKind::kHashJoin)}});
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.outputs, 0u);
}

TEST(RobustnessTest, TransitionToIdenticalPlanIsHarmless) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(3, 4, 300);
  std::map<size_t, LogicalPlan> schedule{{100, plan}, {200, plan}};
  auto r = testutil::DriveAndCompare(&engine, &sink, 3, windows, tuples,
                                     schedule);
  EXPECT_TRUE(r.ok());
}

TEST(RobustnessTest, BackToBackTransitionsWithoutTuples) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  LogicalPlan c = LogicalPlan::LeftDeep({1, 3, 0, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CollectingSink sink;
  Engine engine(a, windows, &sink, MakeJiscStrategy());
  NaiveJoinReference ref(4, windows);
  std::vector<Tuple> ref_out;
  auto tuples = UniformWorkload(4, 4, 300);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i == 120) {
      // Three transitions with zero tuples in between.
      ASSERT_TRUE(engine.RequestTransition(b).ok());
      ASSERT_TRUE(engine.RequestTransition(c).ok());
      ASSERT_TRUE(engine.RequestTransition(a).ok());
    }
    engine.Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, nullptr);
  }
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out));
}

TEST(RobustnessTest, TransitionEveryTuple) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 6);
  CollectingSink sink;
  Engine engine(a, windows, &sink, MakeJiscStrategy());
  NaiveJoinReference ref(3, windows);
  std::vector<Tuple> ref_out;
  std::vector<Tuple> ref_ret;
  auto tuples = UniformWorkload(3, 3, 200);
  for (size_t i = 0; i < tuples.size(); ++i) {
    ASSERT_TRUE(engine.RequestTransition(i % 2 == 0 ? b : a).ok());
    engine.Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, &ref_ret);
  }
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out));
  EXPECT_EQ(IdentityMultiset(sink.retractions()),
            IdentityMultiset(ref_ret));
}

TEST(RobustnessTest, TransitionBeforeAnyTuple) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({2, 0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 6);
  CollectingSink sink;
  Engine engine(a, windows, &sink, MakeJiscStrategy());
  ASSERT_TRUE(engine.RequestTransition(b).ok());
  auto tuples = UniformWorkload(3, 3, 150);
  auto r = testutil::DriveAndCompare(&engine, &sink, 3, windows, tuples, {});
  EXPECT_TRUE(r.ok());
}

TEST(RobustnessTest, MovingStateBackToBackTransitions) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::BalancedBushy({2, 0, 3, 1},
                                             OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 6);
  CollectingSink sink;
  Engine engine(a, windows, &sink, MakeMovingStateStrategy());
  NaiveJoinReference ref(4, windows);
  std::vector<Tuple> ref_out;
  auto tuples = UniformWorkload(4, 3, 300);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i % 60 == 59) {
      ASSERT_TRUE(engine.RequestTransition(i % 120 == 59 ? b : a).ok());
    }
    engine.Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, nullptr);
  }
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out));
}

// Fuzz: random schedules over random orders, bushy and left-deep targets,
// all JISC configurations, seeds swept.
struct FuzzParam {
  uint64_t seed;
  bool bushy_targets;
  JiscOptions::CompletionMode mode;
};

class ScheduleFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(ScheduleFuzzTest, RandomSchedulesMatchReference) {
  const FuzzParam& fp = GetParam();
  Rng rng(fp.seed);
  int n = 3 + static_cast<int>(rng.UniformU64(3));  // 3..5 streams
  uint64_t window = 3 + rng.UniformU64(8);
  uint64_t domain = 2 + rng.UniformU64(5);
  auto order = IdentityOrder(n);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(n, window);
  CollectingSink sink;
  JiscOptions jopts;
  jopts.completion_mode = fp.mode;
  Engine::Options eopts;
  eopts.maintain_period = 16;
  Engine engine(plan, windows, &sink, MakeJiscStrategy(jopts), eopts);
  NaiveJoinReference ref(n, windows);
  std::vector<Tuple> ref_out;
  std::vector<Tuple> ref_ret;
  auto tuples = UniformWorkload(n, domain, 400, fp.seed * 13 + 1);
  auto cur = order;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (rng.Bernoulli(0.02)) {
      cur = RandomTriangularSwap(cur, &rng);
      LogicalPlan next = fp.bushy_targets && rng.Bernoulli(0.5)
                             ? LogicalPlan::BalancedBushy(cur,
                                                          OpKind::kHashJoin)
                             : LogicalPlan::LeftDeep(cur, OpKind::kHashJoin);
      ASSERT_TRUE(engine.RequestTransition(next).ok());
    }
    engine.Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, &ref_ret);
  }
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out));
  EXPECT_EQ(IdentityMultiset(sink.retractions()),
            IdentityMultiset(ref_ret));
}

std::vector<FuzzParam> FuzzParams() {
  std::vector<FuzzParam> out;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    out.push_back({seed, seed % 2 == 0,
                   seed % 3 == 0
                       ? JiscOptions::CompletionMode::kOnFirstReceipt
                       : JiscOptions::CompletionMode::kOnProbe});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ScheduleFuzzTest, ::testing::ValuesIn(FuzzParams()),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.bushy_targets ? "_bushy" : "_leftdeep");
    });

}  // namespace
}  // namespace jisc
