// Robustness and fuzz suites: degenerate parameters, back-to-back and
// no-op transitions, a randomized OperatorState fuzzer checked against a
// simple model, and the IngressGuard recovery suite (duplicate
// suppression, bounded-reorder restoration, overflow policies, and the
// guarded 4-shard engine under a corrupted feed — the latter runs under
// ThreadSanitizer via the Parallel test-name filter).

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/random.h"
#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "core/parallel_engine.h"
#include "exec/ingress_guard.h"
#include "exec/parallel_executor.h"
#include "migration/moving_state.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

// ---------- OperatorState fuzz vs a model ----------

struct ModelEntry {
  Tuple tuple;
  Stamp insert;
  Stamp remove = kStampInfinity;
};

TEST(OperatorStateFuzzTest, MatchesModelUnderRandomOps) {
  Rng rng(2025);
  OperatorState st(StreamSet::Single(0), StateIndex::kHash);
  std::vector<ModelEntry> model;
  Seq next_seq = 0;
  Stamp stamp = 1;
  for (int step = 0; step < 5000; ++step) {
    ++stamp;
    double dice = rng.UniformDouble();
    if (dice < 0.5) {
      // Insert.
      BaseTuple b;
      b.stream = 0;
      b.key = static_cast<JoinKey>(rng.UniformU64(8));
      b.seq = next_seq++;
      Tuple t = Tuple::FromBase(b, stamp, true);
      st.Insert(t, stamp);
      model.push_back({t, stamp});
    } else if (dice < 0.75 && !model.empty()) {
      // Remove a random live entry.
      size_t idx = rng.UniformU64(model.size());
      if (model[idx].remove == kStampInfinity) {
        const Tuple& t = model[idx].tuple;
        int n = st.RemoveContaining(t.parts()[0].seq, t.key(), stamp,
                                    nullptr);
        EXPECT_EQ(n, 1);
        model[idx].remove = stamp;
      }
    } else if (dice < 0.85) {
      st.VacuumDirty();  // must not change visible content
    } else {
      // Probe a random key at a random stamp and compare to the model.
      JoinKey key = static_cast<JoinKey>(rng.UniformU64(8));
      Stamp p = 2 + rng.UniformU64(stamp);
      std::vector<Tuple> got;
      st.CollectMatches(key, p, &got);
      // Vacuumed entries are only reclaimed when no probe below their
      // removal stamp can occur; the fuzzer probes arbitrary stamps, so
      // compare against the model restricted to not-yet-vacuumed rows:
      // emulate by only checking LIVE-at-p entries that are still live or
      // removed after the last vacuum. To keep the oracle exact, compare
      // multisets of live (remove==inf) entries when p == stamp + 1.
      if (p == stamp + 1) {
        std::multiset<uint64_t> expect;
        for (const auto& e : model) {
          if (e.remove == kStampInfinity && e.tuple.key() == key &&
              e.insert < p) {
            expect.insert(e.tuple.IdentityHash());
          }
        }
        EXPECT_EQ(IdentityMultiset(got), expect) << "step " << step;
      }
    }
    // Continuous invariants.
    size_t live = 0;
    std::set<JoinKey> keys;
    for (const auto& e : model) {
      if (e.remove == kStampInfinity) {
        ++live;
        keys.insert(e.tuple.key());
      }
    }
    ASSERT_EQ(st.live_size(), live) << "step " << step;
    ASSERT_EQ(st.DistinctLiveKeys(), keys.size()) << "step " << step;
  }
}

// ---------- degenerate engine parameters ----------

TEST(RobustnessTest, WindowOfOne) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 1);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(3, 2, 300);
  auto r = testutil::DriveAndCompare(
      &engine, &sink, 3, windows, tuples,
      {{150, LogicalPlan::LeftDeep({2, 1, 0}, OpKind::kHashJoin)}});
  EXPECT_TRUE(r.ok());
}

TEST(RobustnessTest, SingleKeyDomain) {
  // Every tuple shares one key: maximal bucket contention.
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 3);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(3, 1, 200);
  auto r = testutil::DriveAndCompare(
      &engine, &sink, 3, windows, tuples,
      {{100, LogicalPlan::LeftDeep({1, 2, 0}, OpKind::kHashJoin)}});
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.outputs, 0u);
}

TEST(RobustnessTest, TransitionToIdenticalPlanIsHarmless) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(3, 4, 300);
  std::map<size_t, LogicalPlan> schedule{{100, plan}, {200, plan}};
  auto r = testutil::DriveAndCompare(&engine, &sink, 3, windows, tuples,
                                     schedule);
  EXPECT_TRUE(r.ok());
}

TEST(RobustnessTest, BackToBackTransitionsWithoutTuples) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  LogicalPlan c = LogicalPlan::LeftDeep({1, 3, 0, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CollectingSink sink;
  Engine engine(a, windows, &sink, MakeJiscStrategy());
  NaiveJoinReference ref(4, windows);
  std::vector<Tuple> ref_out;
  auto tuples = UniformWorkload(4, 4, 300);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i == 120) {
      // Three transitions with zero tuples in between.
      ASSERT_TRUE(engine.RequestTransition(b).ok());
      ASSERT_TRUE(engine.RequestTransition(c).ok());
      ASSERT_TRUE(engine.RequestTransition(a).ok());
    }
    engine.Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, nullptr);
  }
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out));
}

TEST(RobustnessTest, TransitionEveryTuple) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 6);
  CollectingSink sink;
  Engine engine(a, windows, &sink, MakeJiscStrategy());
  NaiveJoinReference ref(3, windows);
  std::vector<Tuple> ref_out;
  std::vector<Tuple> ref_ret;
  auto tuples = UniformWorkload(3, 3, 200);
  for (size_t i = 0; i < tuples.size(); ++i) {
    ASSERT_TRUE(engine.RequestTransition(i % 2 == 0 ? b : a).ok());
    engine.Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, &ref_ret);
  }
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out));
  EXPECT_EQ(IdentityMultiset(sink.retractions()),
            IdentityMultiset(ref_ret));
}

TEST(RobustnessTest, TransitionBeforeAnyTuple) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({2, 0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 6);
  CollectingSink sink;
  Engine engine(a, windows, &sink, MakeJiscStrategy());
  ASSERT_TRUE(engine.RequestTransition(b).ok());
  auto tuples = UniformWorkload(3, 3, 150);
  auto r = testutil::DriveAndCompare(&engine, &sink, 3, windows, tuples, {});
  EXPECT_TRUE(r.ok());
}

TEST(RobustnessTest, MovingStateBackToBackTransitions) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::BalancedBushy({2, 0, 3, 1},
                                             OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 6);
  CollectingSink sink;
  Engine engine(a, windows, &sink, MakeMovingStateStrategy());
  NaiveJoinReference ref(4, windows);
  std::vector<Tuple> ref_out;
  auto tuples = UniformWorkload(4, 3, 300);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i % 60 == 59) {
      ASSERT_TRUE(engine.RequestTransition(i % 120 == 59 ? b : a).ok());
    }
    engine.Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, nullptr);
  }
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out));
}

// ---------- IngressGuard: classification semantics ----------

BaseTuple GuardTuple(StreamId stream, Seq seq) {
  BaseTuple t;
  t.stream = stream;
  t.key = static_cast<JoinKey>(seq % 5);
  t.payload = static_cast<int64_t>(seq);
  t.seq = seq;
  t.ts = seq;
  return t;
}

IngressGuard::Options GuardOptions(
    size_t dedup, size_t reorder,
    IngressGuard::OverflowPolicy policy =
        IngressGuard::OverflowPolicy::kAdmitLate) {
  IngressGuard::Options o;
  o.enabled = true;
  o.dedup_window = dedup;
  o.reorder_window = reorder;
  o.overflow = policy;
  return o;
}

std::vector<Seq> AdmittedSeqs(const std::vector<BaseTuple>& admitted) {
  std::vector<Seq> seqs;
  for (const BaseTuple& t : admitted) seqs.push_back(t.seq);
  return seqs;
}

TEST(IngressGuardTest, InOrderFeedPassesThroughUntouched) {
  IngressGuard guard(GuardOptions(8, 4), 2);
  std::vector<BaseTuple> admitted;
  for (Seq s = 0; s < 20; ++s) {
    ASSERT_TRUE(
        guard.Offer(GuardTuple(static_cast<StreamId>(s % 2), s), &admitted)
            .ok());
  }
  EXPECT_EQ(AdmittedSeqs(admitted),
            (std::vector<Seq>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                              14, 15, 16, 17, 18, 19}));
  EXPECT_EQ(guard.pending(), 0u);
  EXPECT_EQ(guard.stats().duplicates_suppressed, 0u);
  EXPECT_EQ(guard.stats().reorder_restored, 0u);
  EXPECT_EQ(guard.stats().late_admitted, 0u);
  EXPECT_EQ(guard.stats().late_dropped, 0u);
}

TEST(IngressGuardTest, SuppressesDuplicatesOfAdmittedAndBufferedTuples) {
  IngressGuard guard(GuardOptions(8, 4), 1);
  std::vector<BaseTuple> admitted;
  ASSERT_TRUE(guard.Offer(GuardTuple(0, 0), &admitted).ok());
  // Duplicate of an already-admitted tuple.
  ASSERT_TRUE(guard.Offer(GuardTuple(0, 0), &admitted).ok());
  // seq 2 buffers (gap at 1); its duplicate is suppressed while buffered.
  ASSERT_TRUE(guard.Offer(GuardTuple(0, 2), &admitted).ok());
  ASSERT_TRUE(guard.Offer(GuardTuple(0, 2), &admitted).ok());
  ASSERT_TRUE(guard.Offer(GuardTuple(0, 1), &admitted).ok());
  EXPECT_EQ(AdmittedSeqs(admitted), (std::vector<Seq>{0, 1, 2}));
  EXPECT_EQ(guard.stats().duplicates_suppressed, 2u);
  EXPECT_EQ(guard.stats().reorder_restored, 1u);
}

TEST(IngressGuardTest, RestoresSeededBatchShuffleExactly) {
  // Shuffle 0..63 in batches of 8 (the harness fault shape) and check the
  // guard re-emits the identity order with nothing pending.
  IngressGuard guard(GuardOptions(64, 8), 4);
  Rng rng(99);
  std::vector<BaseTuple> admitted;
  std::vector<BaseTuple> batch;
  for (Seq s = 0; s < 64; ++s) {
    batch.push_back(GuardTuple(static_cast<StreamId>(s % 4), s));
    if (batch.size() == 8) {
      for (size_t i = batch.size() - 1; i > 0; --i) {
        std::swap(batch[i], batch[rng.UniformU64(i + 1)]);
      }
      for (const BaseTuple& t : batch) {
        ASSERT_TRUE(guard.Offer(t, &admitted).ok());
      }
      batch.clear();
    }
  }
  std::vector<Seq> expect(64);
  for (Seq s = 0; s < 64; ++s) expect[s] = s;
  EXPECT_EQ(AdmittedSeqs(admitted), expect);
  EXPECT_EQ(guard.pending(), 0u);
  EXPECT_EQ(guard.stats().late_admitted, 0u);
}

TEST(IngressGuardTest, GapSkipThenLateArrivalFollowsPolicy) {
  auto feed_gap = [](IngressGuard* guard, std::vector<BaseTuple>* admitted) {
    // seq 0 admitted, seq 1 never arrives; 2..6 overflow a 4-slot buffer,
    // forcing a gap-skip past 1.
    ASSERT_TRUE(guard->Offer(GuardTuple(0, 0), admitted).ok());
    for (Seq s = 2; s <= 6; ++s) {
      ASSERT_TRUE(guard->Offer(GuardTuple(0, s), admitted).ok());
    }
    EXPECT_EQ(AdmittedSeqs(*admitted), (std::vector<Seq>{0, 2, 3, 4, 5, 6}));
    EXPECT_EQ(guard->next_expected(), 7u);
  };
  {
    IngressGuard guard(GuardOptions(2, 4), 1);  // dedup window forgets seq 0
    std::vector<BaseTuple> admitted;
    feed_gap(&guard, &admitted);
    ASSERT_TRUE(guard.Offer(GuardTuple(0, 1), &admitted).ok());
    EXPECT_EQ(admitted.back().seq, 1u);
    EXPECT_EQ(guard.stats().late_admitted, 1u);
  }
  {
    IngressGuard guard(GuardOptions(2, 4,
                                    IngressGuard::OverflowPolicy::kDropLate),
                       1);
    std::vector<BaseTuple> admitted;
    feed_gap(&guard, &admitted);
    ASSERT_TRUE(guard.Offer(GuardTuple(0, 1), &admitted).ok());
    EXPECT_EQ(admitted.back().seq, 6u);
    EXPECT_EQ(guard.stats().late_dropped, 1u);
  }
  {
    IngressGuard guard(GuardOptions(2, 4,
                                    IngressGuard::OverflowPolicy::kFail),
                       1);
    std::vector<BaseTuple> admitted;
    feed_gap(&guard, &admitted);
    Status s = guard.Offer(GuardTuple(0, 1), &admitted);
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  }
}

TEST(IngressGuardTest, FlushDrainsPendingInSeqOrder) {
  IngressGuard guard(GuardOptions(8, 16), 1);
  std::vector<BaseTuple> admitted;
  for (Seq s : {5, 3, 9, 7}) {
    ASSERT_TRUE(guard.Offer(GuardTuple(0, s), &admitted).ok());
  }
  EXPECT_TRUE(admitted.empty());  // all ahead of next_expected 0
  guard.Flush(&admitted);
  EXPECT_EQ(AdmittedSeqs(admitted), (std::vector<Seq>{3, 5, 7, 9}));
  EXPECT_EQ(guard.pending(), 0u);
}

TEST(IngressGuardTest, SerializeRoundTripMidReorder) {
  IngressGuard guard(GuardOptions(4, 8), 2);
  std::vector<BaseTuple> admitted;
  ASSERT_TRUE(guard.Offer(GuardTuple(0, 0), &admitted).ok());
  ASSERT_TRUE(guard.Offer(GuardTuple(1, 1), &admitted).ok());
  ASSERT_TRUE(guard.Offer(GuardTuple(1, 3), &admitted).ok());  // buffered
  ASSERT_TRUE(guard.Offer(GuardTuple(0, 4), &admitted).ok());  // buffered
  ASSERT_TRUE(guard.Offer(GuardTuple(1, 1), &admitted).ok());  // duplicate
  ByteWriter w;
  guard.SerializeCanonical(&w);
  std::string bytes = w.Take();
  ByteReader r(bytes);
  auto restored = IngressGuard::DeserializeCanonical(&r);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_TRUE(r.AtEnd());
  EXPECT_EQ(restored.value()->pending(), 2u);
  EXPECT_EQ(restored.value()->next_expected(), 2u);
  EXPECT_EQ(restored.value()->stats().duplicates_suppressed, 1u);
  // Same canonical bytes again: serialization is deterministic.
  ByteWriter w2;
  restored.value()->SerializeCanonical(&w2);
  EXPECT_EQ(bytes, w2.Take());
  // The restored guard continues identically: fill the gap, both drain.
  std::vector<BaseTuple> a1;
  std::vector<BaseTuple> a2;
  ASSERT_TRUE(guard.Offer(GuardTuple(0, 2), &a1).ok());
  ASSERT_TRUE(restored.value()->Offer(GuardTuple(0, 2), &a2).ok());
  EXPECT_EQ(AdmittedSeqs(a1), (std::vector<Seq>{2, 3, 4}));
  EXPECT_EQ(AdmittedSeqs(a2), (std::vector<Seq>{2, 3, 4}));
}

// ---------- IngressGuard over the sharded engine (TSan-gated) ----------

// Corrupts a clean workload the way the scenario harness does: every
// duplicate_every-th tuple re-delivered after itself, then tumbling
// batches of reorder_window tuples shuffled with a seeded Rng.
std::vector<BaseTuple> CorruptFeed(const std::vector<BaseTuple>& clean,
                                   size_t duplicate_every,
                                   size_t reorder_window, uint64_t seed) {
  std::vector<BaseTuple> duplicated;
  for (size_t i = 0; i < clean.size(); ++i) {
    duplicated.push_back(clean[i]);
    if (duplicate_every != 0 && (i + 1) % duplicate_every == 0) {
      duplicated.push_back(clean[i]);
    }
  }
  Rng rng(seed);
  std::vector<BaseTuple> corrupted;
  std::vector<BaseTuple> batch;
  auto flush_batch = [&] {
    for (size_t i = batch.size(); i > 1; --i) {
      std::swap(batch[i - 1], batch[rng.UniformU64(i)]);
    }
    corrupted.insert(corrupted.end(), batch.begin(), batch.end());
    batch.clear();
  };
  for (const BaseTuple& t : duplicated) {
    batch.push_back(t);
    if (batch.size() >= reorder_window) flush_batch();
  }
  flush_batch();
  return corrupted;
}

// The guarded 4-shard engine under a duplicated + reordered feed must emit
// exactly the clean-feed oracle's outputs: the guard restores the feed
// before the coordinator shards it. Suite name matches CI's TSan test
// filter (Parallel), so this runs under ThreadSanitizer nightly.
TEST(GuardedParallelTest, CorruptedFeedMatchesCleanOracleAcrossShards) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 16);
  auto clean = UniformWorkload(4, 8, 1200);
  auto corrupted = CorruptFeed(clean, 5, 16, /*seed=*/2026);
  LogicalPlan target = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);

  CollectingSink oracle_sink;
  Engine oracle(plan, windows, &oracle_sink, MakeJiscStrategy());
  for (size_t i = 0; i < clean.size(); ++i) {
    if (i == 600) {
      ASSERT_TRUE(oracle.RequestTransition(target).ok());
    }
    oracle.Push(clean[i]);
  }

  CollectingSink guarded_sink;
  Engine::Options eopts;
  eopts.parallelism = 4;
  eopts.ingress = GuardOptions(1024, 64);
  auto guarded = MakeEngineProcessor(plan, windows, &guarded_sink,
                                     [] { return MakeJiscStrategy(); },
                                     eopts, ParallelExecutor::Options());
  auto* wrapper = dynamic_cast<GuardedProcessor*>(guarded.get());
  ASSERT_NE(wrapper, nullptr);
  // Transitions land at the same clean-feed offset: feed corrupted tuples
  // until 600 distinct seqs below 600 have been offered, flush, transition.
  bool transitioned = false;
  for (const BaseTuple& t : corrupted) {
    if (!transitioned && wrapper->guard().next_expected() >= 600) {
      ASSERT_TRUE(guarded->RequestTransition(target).ok());
      transitioned = true;
    }
    guarded->Push(t);
  }
  wrapper->FlushPending();
  ASSERT_TRUE(transitioned);
  auto* parallel = dynamic_cast<ParallelExecutor*>(wrapper->inner());
  ASSERT_NE(parallel, nullptr);
  parallel->Barrier();

  EXPECT_EQ(wrapper->guard().stats().duplicates_suppressed,
            clean.size() / 5);
  EXPECT_EQ(wrapper->guard().stats().late_admitted, 0u);
  EXPECT_EQ(wrapper->guard().stats().late_dropped, 0u);
  EXPECT_EQ(IdentityMultiset(guarded_sink.outputs()),
            IdentityMultiset(oracle_sink.outputs()));
  EXPECT_EQ(IdentityMultiset(guarded_sink.retractions()),
            IdentityMultiset(oracle_sink.retractions()));
}

// Fuzz: random schedules over random orders, bushy and left-deep targets,
// all JISC configurations, seeds swept.
struct FuzzParam {
  uint64_t seed;
  bool bushy_targets;
  JiscOptions::CompletionMode mode;
};

class ScheduleFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(ScheduleFuzzTest, RandomSchedulesMatchReference) {
  const FuzzParam& fp = GetParam();
  Rng rng(fp.seed);
  int n = 3 + static_cast<int>(rng.UniformU64(3));  // 3..5 streams
  uint64_t window = 3 + rng.UniformU64(8);
  uint64_t domain = 2 + rng.UniformU64(5);
  auto order = IdentityOrder(n);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(n, window);
  CollectingSink sink;
  JiscOptions jopts;
  jopts.completion_mode = fp.mode;
  Engine::Options eopts;
  eopts.maintain_period = 16;
  Engine engine(plan, windows, &sink, MakeJiscStrategy(jopts), eopts);
  NaiveJoinReference ref(n, windows);
  std::vector<Tuple> ref_out;
  std::vector<Tuple> ref_ret;
  auto tuples = UniformWorkload(n, domain, 400, fp.seed * 13 + 1);
  auto cur = order;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (rng.Bernoulli(0.02)) {
      cur = RandomTriangularSwap(cur, &rng);
      LogicalPlan next = fp.bushy_targets && rng.Bernoulli(0.5)
                             ? LogicalPlan::BalancedBushy(cur,
                                                          OpKind::kHashJoin)
                             : LogicalPlan::LeftDeep(cur, OpKind::kHashJoin);
      ASSERT_TRUE(engine.RequestTransition(next).ok());
    }
    engine.Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, &ref_ret);
  }
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out));
  EXPECT_EQ(IdentityMultiset(sink.retractions()),
            IdentityMultiset(ref_ret));
}

std::vector<FuzzParam> FuzzParams() {
  std::vector<FuzzParam> out;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    out.push_back({seed, seed % 2 == 0,
                   seed % 3 == 0
                       ? JiscOptions::CompletionMode::kOnFirstReceipt
                       : JiscOptions::CompletionMode::kOnProbe});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ScheduleFuzzTest, ::testing::ValuesIn(FuzzParams()),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.bushy_targets ? "_bushy" : "_leftdeep");
    });

}  // namespace
}  // namespace jisc
