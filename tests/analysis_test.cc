// Validates the Section 5 probabilistic model (Propositions 1-3) against
// exact enumeration and Monte-Carlo simulation, and cross-checks it against
// the engine's actual state classification.

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/complete_states_model.h"
#include "plan/transitions.h"

namespace jisc {
namespace {

TEST(HarmonicTest, KnownValues) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(2), 1.5);
  EXPECT_NEAR(HarmonicNumber(4), 25.0 / 12.0, 1e-12);
  // H_n ~ ln n + gamma.
  EXPECT_NEAR(HarmonicNumber(100000), std::log(100000) + 0.5772156649,
              1e-5);
}

// Exact enumeration of the triangular distribution must reproduce the
// closed forms of Proposition 1.
TEST(Proposition1Test, MatchesExactEnumeration) {
  for (int n : {2, 3, 5, 10, 40, 100}) {
    double alpha = AlphaN(n);
    double mean = 0;
    double second = 0;
    double total_prob = 0;
    for (int i = 1; i < n; ++i) {
      for (int j = i + 1; j <= n; ++j) {
        double p = alpha / (j - i);
        total_prob += p;
        double c = n - (j - i);
        mean += c * p;
        second += c * c * p;
      }
    }
    EXPECT_NEAR(total_prob, 1.0, 1e-9) << "n=" << n;
    EXPECT_NEAR(ExpectedCompleteStates(n), mean, 1e-6) << "n=" << n;
    EXPECT_NEAR(VarianceCompleteStates(n), second - mean * mean,
                1e-6 * n * n)
        << "n=" << n;
  }
}

TEST(Proposition2Test, AsymptoticsConverge) {
  // The relative error of the asymptotic forms shrinks as n grows.
  double prev_mean_err = 1e9;
  for (int n : {64, 1024, 65536}) {
    double exact = ExpectedCompleteStates(n);
    double asym = ExpectedCompleteStatesAsymptotic(n);
    double err = std::fabs(exact - asym) / n;
    EXPECT_LT(err, prev_mean_err + 1e-12);
    prev_mean_err = err;
  }
  // Var[C_n] / (n^2 / (6 ln n)) -> 1.
  double ratio = VarianceCompleteStates(65536) /
                 VarianceCompleteStatesAsymptotic(65536);
  EXPECT_NEAR(ratio, 1.0, 0.25);
}

TEST(MonteCarloTest, AgreesWithClosedForms) {
  Rng rng(4242);
  for (int n : {5, 20, 100}) {
    MonteCarloResult mc = SimulateCompleteStates(n, 200000, 0.5, &rng);
    EXPECT_NEAR(mc.mean, ExpectedCompleteStates(n),
                0.02 * ExpectedCompleteStates(n))
        << "n=" << n;
    EXPECT_NEAR(mc.variance, VarianceCompleteStates(n),
                0.05 * VarianceCompleteStates(n) + 0.5)
        << "n=" << n;
  }
}

// Proposition 3 (concentration): Prob(C_n/n < 1 - eps) -> 0 as n grows.
TEST(Proposition3Test, ConcentrationTailVanishes) {
  Rng rng(77);
  double eps = 0.5;
  double prev = 1.0;
  for (int n : {8, 64, 512, 4096}) {
    MonteCarloResult mc = SimulateCompleteStates(n, 100000, eps, &rng);
    EXPECT_LE(mc.tail_fraction, prev + 0.01) << "n=" << n;
    prev = mc.tail_fraction;
  }
  EXPECT_LT(prev, 0.12);  // far into the vanishing regime at n=4096
}

// The model's C_n must equal the engine-level structural count: a pairwise
// exchange of positions (i, j) leaves exactly n - (j - i) complete states
// among the n join states of a left-deep plan.
TEST(ModelVsPlanTest, CompleteStatesMatchStructuralCount) {
  Rng rng(11);
  const int kStreams = 9;               // n = 8 join operators
  const int n_ops = kStreams - 1;
  std::vector<StreamId> base;
  for (int i = 0; i < kStreams; ++i) base.push_back(static_cast<StreamId>(i));
  for (int t = 0; t < 300; ++t) {
    int i = 0, j = 0;
    auto swapped = RandomTriangularSwap(base, &rng, &i, &j);
    int incomplete = CountIncompleteStates(base, swapped);
    EXPECT_EQ(n_ops - incomplete, n_ops - (j - i));
  }
}

}  // namespace
}  // namespace jisc
