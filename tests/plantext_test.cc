// Plan text parsing / round-tripping, generic shape assembly, the random
// tree generator, and the Explain introspection output.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "exec/explain.h"
#include "plan/plan_text.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

TEST(PlanTextTest, RoundTripsBuilders) {
  for (const LogicalPlan& plan :
       {LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin),
        LogicalPlan::LeftDeep({3, 1, 0, 2}, OpKind::kNljJoin),
        LogicalPlan::BalancedBushy({0, 1, 2, 3, 4}, OpKind::kHashJoin),
        LogicalPlan::SetDifferenceChain(2, {0, 1}),
        LogicalPlan::SemiJoinChain(0, {1, 2, 3})}) {
    auto parsed = ParsePlan(plan.ToString());
    ASSERT_TRUE(parsed.ok()) << plan.ToString() << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(parsed.value().ToString(), plan.ToString());
    EXPECT_TRUE(parsed.value().Validate().ok());
  }
}

TEST(PlanTextTest, ParsesWhitespaceVariants) {
  auto p = ParsePlan("  ( ( S0 HJ S1 )  NLJ  S2 ) ");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().ToString(), "((S0 HJ S1) NLJ S2)");
}

TEST(PlanTextTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "S", "(S0 HJ", "(S0 XX S1)", "(S0 HJ S1) junk", "(S0 HJ S0)",
        "(S0 HJ S999)", "((S0 HJ S1)", "S0 S1"}) {
    EXPECT_FALSE(ParsePlan(bad).ok()) << "accepted: " << bad;
  }
}

TEST(PlanTextTest, SingleScanIsNotAPlan) {
  // A bare scan parses as a node but fails plan validation semantics for
  // migration purposes only; FromShape accepts it as a degenerate plan.
  auto p = ParsePlan("S3");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().num_nodes(), 1);
}

TEST(FromShapeTest, RejectsBadShapes) {
  using SE = LogicalPlan::ShapeEntry;
  EXPECT_FALSE(LogicalPlan::FromShape({}).ok());
  // Operator without two operands.
  EXPECT_FALSE(LogicalPlan::FromShape(
                   {SE{true, 0, OpKind::kScan},
                    SE{false, 0, OpKind::kHashJoin}})
                   .ok());
  // Two disconnected trees.
  EXPECT_FALSE(LogicalPlan::FromShape(
                   {SE{true, 0, OpKind::kScan}, SE{true, 1, OpKind::kScan}})
                   .ok());
  // Duplicate stream.
  EXPECT_FALSE(LogicalPlan::FromShape(
                   {SE{true, 0, OpKind::kScan}, SE{true, 0, OpKind::kScan},
                    SE{false, 0, OpKind::kHashJoin}})
                   .ok());
  // Internal entry marked as scan kind.
  EXPECT_FALSE(LogicalPlan::FromShape(
                   {SE{true, 0, OpKind::kScan}, SE{true, 1, OpKind::kScan},
                    SE{false, 0, OpKind::kScan}})
                   .ok());
}

TEST(RandomPlanTreeTest, ProducesValidVariedShapes) {
  Rng rng(55);
  std::vector<StreamId> streams{0, 1, 2, 3, 4, 5};
  int left_deep = 0;
  for (int i = 0; i < 100; ++i) {
    LogicalPlan p = RandomPlanTree(streams, OpKind::kHashJoin, &rng);
    EXPECT_TRUE(p.Validate().ok());
    EXPECT_EQ(p.streams().size(), 6);
    if (p.IsLeftDeep()) ++left_deep;
    // Round-trips through the parser too.
    auto rt = ParsePlan(p.ToString());
    ASSERT_TRUE(rt.ok());
    EXPECT_TRUE(rt.value() == p);
  }
  // Random shapes must not all be left-deep chains (a full chain is in
  // fact a rare draw among 6-leaf shapes).
  EXPECT_LT(left_deep, 60);
}

TEST(ExplainTest, ShowsCompletenessAndSizes) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep({2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = testutil::UniformWorkload(3, 4, 100);
  for (const auto& t : tuples) engine.Push(t);
  ASSERT_TRUE(engine.RequestTransition(next).ok());
  std::string text = ExplainExecutor(engine.executor());
  EXPECT_NE(text.find("INCOMPLETE"), std::string::npos);
  EXPECT_NE(text.find("[complete]"), std::string::npos);
  EXPECT_NE(text.find("window="), std::string::npos);
  EXPECT_NE(text.find("HJ#"), std::string::npos);

  std::string dot = ExecutorToDot(engine.executor());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("lightsalmon"), std::string::npos);  // incomplete node
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace jisc
