#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/sketch.h"

namespace jisc {
namespace {

TEST(CountMinTest, NeverUnderestimates) {
  CountMinSketch cms(512, 4);
  Rng rng(7);
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng.UniformU64(300);
    cms.Add(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(cms.Estimate(key), count) << "key " << key;
  }
  EXPECT_EQ(cms.total(), 20000u);
}

TEST(CountMinTest, ErrorBoundedByTotalOverWidth) {
  const size_t kWidth = 2048;
  CountMinSketch cms(kWidth, 5);
  Rng rng(11);
  std::map<uint64_t, uint64_t> truth;
  const uint64_t kN = 50000;
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t key = rng.UniformU64(5000);
    cms.Add(key);
    ++truth[key];
  }
  // CM guarantee: err <= e*N/width with high probability; allow 3x slack.
  uint64_t budget = 3 * 2.72 * kN / kWidth + 1;
  int violations = 0;
  for (const auto& [key, count] : truth) {
    if (cms.Estimate(key) > count + budget) ++violations;
  }
  EXPECT_LE(violations, 5);
}

TEST(CountMinTest, MergeAddsCounts) {
  CountMinSketch a(128, 3);
  CountMinSketch b(128, 3);
  a.Add(42, 10);
  b.Add(42, 5);
  b.Add(7, 2);
  a.Merge(b);
  EXPECT_GE(a.Estimate(42), 15u);
  EXPECT_GE(a.Estimate(7), 2u);
  EXPECT_EQ(a.total(), 17u);
  a.Clear();
  EXPECT_EQ(a.Estimate(42), 0u);
}

TEST(HyperLogLogTest, AccurateWithinStandardError) {
  for (uint64_t distinct : {100u, 10000u, 200000u}) {
    HyperLogLog hll(12);  // 4096 registers -> ~1.6% standard error
    for (uint64_t i = 0; i < distinct; ++i) {
      hll.Add(i * 0x9e3779b97f4a7c15ULL + 1);
      hll.Add(i * 0x9e3779b97f4a7c15ULL + 1);  // duplicates don't count
    }
    double est = hll.Estimate();
    EXPECT_NEAR(est, static_cast<double>(distinct), 0.06 * distinct)
        << "distinct " << distinct;
  }
}

TEST(HyperLogLogTest, SmallRangeLinearCounting) {
  HyperLogLog hll(10);
  for (uint64_t i = 0; i < 5; ++i) hll.Add(i);
  EXPECT_NEAR(hll.Estimate(), 5.0, 1.0);
}

TEST(HyperLogLogTest, MergeEqualsUnion) {
  HyperLogLog a(12);
  HyperLogLog b(12);
  for (uint64_t i = 0; i < 5000; ++i) a.Add(i);
  for (uint64_t i = 2500; i < 7500; ++i) b.Add(i);
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), 7500.0, 0.06 * 7500);
  a.Clear();
  EXPECT_LT(a.Estimate(), 1.0);
}

}  // namespace
}  // namespace jisc
