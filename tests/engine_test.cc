// Engine lifecycle, Parallel Track lifecycle, Moving State internals, and
// miscellaneous plumbing not covered by the scenario suites.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "migration/moving_state.h"
#include "migration/hybrid_track.h"
#include "migration/parallel_track.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

TEST(EngineTest, TransitionCounterAndPlanAccessors) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CountingSink sink;
  Engine engine(a, windows, &sink, MakeJiscStrategy());
  EXPECT_EQ(engine.transitions(), 0u);
  EXPECT_TRUE(engine.plan() == a);
  ASSERT_TRUE(engine.RequestTransition(b).ok());
  EXPECT_EQ(engine.transitions(), 1u);
  EXPECT_TRUE(engine.plan() == b);
}

TEST(EngineTest, BufferedCountAndDrain) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(2, 2, 10);
  for (const auto& t : tuples) engine.PushNoDrain(t);
  EXPECT_EQ(engine.buffered(), 10u);
  EXPECT_EQ(engine.metrics().arrivals, 0u);  // nothing admitted yet
  engine.Drain();
  EXPECT_EQ(engine.buffered(), 0u);
  EXPECT_EQ(engine.metrics().arrivals, 10u);
}

TEST(EngineTest, PushFlushesPendingBuffer) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(2, 2, 20);
  engine.PushNoDrain(tuples[0]);
  engine.PushNoDrain(tuples[1]);
  engine.Push(tuples[2]);  // must drain the buffer first, in order
  EXPECT_EQ(engine.buffered(), 0u);
  EXPECT_EQ(engine.metrics().arrivals, 3u);
}

TEST(EngineTest, LoadSheddingDropsNewestWhenBufferFull) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CountingSink sink;
  Engine::Options opts;
  opts.max_buffered_arrivals = 5;
  Engine engine(plan, windows, &sink, MakeJiscStrategy(), opts);
  auto tuples = UniformWorkload(2, 2, 12);
  for (const auto& t : tuples) engine.PushNoDrain(t);
  EXPECT_EQ(engine.buffered(), 5u);
  EXPECT_EQ(engine.shed_tuples(), 7u);
  engine.Drain();
  EXPECT_EQ(engine.metrics().arrivals, 5u);
}

TEST(EngineTest, MetricsSurviveMigration) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CountingSink sink;
  Engine engine(a, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(3, 3, 100);
  for (size_t i = 0; i < 50; ++i) engine.Push(tuples[i]);
  uint64_t arrivals_before = engine.metrics().arrivals;
  ASSERT_TRUE(engine.RequestTransition(b).ok());
  for (size_t i = 50; i < 100; ++i) engine.Push(tuples[i]);
  // The metrics object persists across executor rebuilds.
  EXPECT_EQ(engine.metrics().arrivals, arrivals_before + 50);
}

TEST(EngineTest, FreshnessGenerationBumpsPerTransition) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CountingSink sink;
  Engine engine(a, windows, &sink, MakeJiscStrategy());
  EXPECT_EQ(engine.freshness().generation(), 0u);
  ASSERT_TRUE(engine.RequestTransition(b).ok());
  EXPECT_EQ(engine.freshness().generation(), 1u);
  ASSERT_TRUE(engine.RequestTransition(a).ok());
  EXPECT_EQ(engine.freshness().generation(), 2u);
}

TEST(FreshnessTrackerTest, PerStreamClassification) {
  FreshnessTracker fr(2);
  EXPECT_TRUE(fr.ClassifyAndMark(0, 7));   // first ever: fresh
  EXPECT_TRUE(fr.IsFresh(1, 7));           // other stream unaffected
  fr.BumpGeneration();
  EXPECT_TRUE(fr.IsFresh(0, 7));           // fresh again after transition
  EXPECT_TRUE(fr.ClassifyAndMark(0, 7));
  EXPECT_FALSE(fr.IsFresh(0, 7));          // attempted now
  EXPECT_FALSE(fr.ClassifyAndMark(0, 7));  // still attempted
  EXPECT_TRUE(fr.ClassifyAndMark(1, 7));   // per-stream independence
}

TEST(MovingStateTest, ReportsMigrationInserts) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 16);
  CountingSink sink;
  auto strategy = std::make_unique<MovingStateStrategy>();
  MovingStateStrategy* ms = strategy.get();
  Engine engine(a, windows, &sink, std::move(strategy));
  auto tuples = UniformWorkload(3, 2, 200);  // dense keys -> real states
  for (const auto& t : tuples) engine.Push(t);
  ASSERT_TRUE(engine.RequestTransition(b).ok());
  EXPECT_GT(ms->last_migration_inserts(), 0u);
  // Best-case transition back: every state matches, nothing to compute...
  // (the reversal of a reversal is the original; all states exist again).
  ASSERT_TRUE(engine.RequestTransition(a).ok());
  // Only the states absent from plan b need recomputing; the reversal
  // shares only leaves + root, so inserts are still nonzero. Check the
  // truly-shared case: transition to the identical plan.
  ASSERT_TRUE(engine.RequestTransition(a).ok());
  EXPECT_EQ(ms->last_migration_inserts(), 0u);
}

TEST(ParallelTrackTest, MigratingLifecycle) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CountingSink sink;
  ParallelTrackProcessor::Options opts;
  opts.purge_check_period = 8;
  ParallelTrackProcessor pt(a, windows, &sink, opts);
  EXPECT_FALSE(pt.migrating());
  auto tuples = UniformWorkload(3, 4, 400);
  size_t i = 0;
  for (; i < 100; ++i) pt.Push(tuples[i]);
  ASSERT_TRUE(pt.RequestTransition(b).ok());
  EXPECT_TRUE(pt.migrating());
  EXPECT_EQ(pt.num_live_plans(), 2u);
  // One full window turnover (3 streams x 8) plus check slack ends the
  // migration stage.
  for (; i < 200; ++i) pt.Push(tuples[i]);
  EXPECT_FALSE(pt.migrating());
  EXPECT_EQ(pt.num_live_plans(), 1u);
  EXPECT_GT(pt.metrics().purge_scan_entries, 0u);
}

TEST(ParallelTrackTest, OverlappedTransitionsRunThreePlans) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  LogicalPlan c = LogicalPlan::LeftDeep({1, 0, 3, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 16);
  CountingSink sink;
  ParallelTrackProcessor::Options opts;
  opts.purge_check_period = 1024;  // keep plans alive for the test
  ParallelTrackProcessor pt(a, windows, &sink, opts);
  auto tuples = UniformWorkload(4, 4, 120);
  size_t i = 0;
  for (; i < 40; ++i) pt.Push(tuples[i]);
  ASSERT_TRUE(pt.RequestTransition(b).ok());
  for (; i < 60; ++i) pt.Push(tuples[i]);
  ASSERT_TRUE(pt.RequestTransition(c).ok());
  EXPECT_EQ(pt.num_live_plans(), 3u);
  for (; i < 120; ++i) pt.Push(tuples[i]);
}

TEST(HybridTrackTest, CopiesSharedStatesAndShortensNothingUnsound) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  // Best-case reorder: almost everything is shared.
  LogicalPlan b = LogicalPlan::LeftDeep({0, 1, 3, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CountingSink sink;
  HybridTrackProcessor::Options opts;
  opts.purge_check_period = 8;
  HybridTrackProcessor hy(a, windows, &sink, opts);
  auto tuples = UniformWorkload(4, 4, 400);
  size_t i = 0;
  for (; i < 100; ++i) hy.Push(tuples[i]);
  ASSERT_TRUE(hy.RequestTransition(b).ok());
  // Shared: 4 scans + {0,1} + root = 6 of 7 states.
  EXPECT_EQ(hy.last_states_copied(), 6u);
  EXPECT_TRUE(hy.migrating());
  for (; i < 250; ++i) hy.Push(tuples[i]);
  EXPECT_FALSE(hy.migrating());
}

TEST(HybridTrackTest, OverlappedClonesOnlyAuthoritativeStates) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 16);
  CountingSink sink;
  HybridTrackProcessor::Options opts;
  opts.purge_check_period = 4096;  // keep everything alive
  HybridTrackProcessor hy(a, windows, &sink, opts);
  auto tuples = UniformWorkload(4, 4, 200);
  size_t i = 0;
  for (; i < 80; ++i) hy.Push(tuples[i]);
  ASSERT_TRUE(hy.RequestTransition(b).ok());
  uint64_t first = hy.last_states_copied();
  for (; i < 100; ++i) hy.Push(tuples[i]);
  // Transition back while b's new states are still unauthoritative: only
  // the states that were authoritative in b may be cloned.
  ASSERT_TRUE(hy.RequestTransition(a).ok());
  EXPECT_EQ(hy.num_live_plans(), 3u);
  EXPECT_LE(hy.last_states_copied(), first);
  for (; i < 200; ++i) hy.Push(tuples[i]);
}

TEST(HybridTrackTest, RejectsNonJoinPlans) {
  LogicalPlan joins = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CountingSink sink;
  HybridTrackProcessor hy(joins, windows, &sink);
  EXPECT_FALSE(
      hy.RequestTransition(LogicalPlan::SemiJoinChain(0, {1, 2})).ok());
  EXPECT_FALSE(
      hy.RequestTransition(LogicalPlan::SetDifferenceChain(0, {1, 2})).ok());
}

TEST(ParallelTrackTest, RejectsSetDifference) {
  LogicalPlan joins = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan diff = LogicalPlan::SetDifferenceChain(0, {1, 2});
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CountingSink sink;
  ParallelTrackProcessor pt(joins, windows, &sink);
  EXPECT_EQ(pt.RequestTransition(diff).code(), StatusCode::kUnimplemented);
}

TEST(ParallelTrackTest, RejectsMismatchedStreams) {
  LogicalPlan a = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  LogicalPlan other = LogicalPlan::LeftDeep({1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CountingSink sink;
  ParallelTrackProcessor pt(a, windows, &sink);
  EXPECT_FALSE(pt.RequestTransition(other).ok());
}

TEST(JiscRuntimeTest, IncompleteCountDrainsToZero) {
  LogicalPlan a = LogicalPlan::LeftDeep(IdentityOrder(4), OpKind::kHashJoin);
  LogicalPlan b = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CountingSink sink;
  auto runtime = std::make_unique<JiscRuntime>();
  JiscRuntime* rt = runtime.get();
  Engine::Options eopts;
  eopts.maintain_period = 16;
  Engine engine(a, windows, &sink, std::move(runtime), eopts);
  auto tuples = UniformWorkload(4, 4, 400);
  size_t i = 0;
  for (; i < 100; ++i) engine.Push(tuples[i]);
  ASSERT_TRUE(engine.RequestTransition(b).ok());
  EXPECT_GT(rt->num_incomplete(), 0);
  for (; i < 400; ++i) engine.Push(tuples[i]);
  EXPECT_EQ(rt->num_incomplete(), 0);
}

TEST(OperatorDebugTest, DebugStringsAreInformative) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  std::string s = engine.executor().root()->DebugString();
  EXPECT_NE(s.find("HJ"), std::string::npos);
  EXPECT_NE(s.find("State"), std::string::npos);
}

#if GTEST_HAS_DEATH_TEST
TEST(CheckDeathTest, FatalCheckAborts) {
  EXPECT_DEATH(JISC_CHECK(1 == 2) << "boom", "Check failed");
}

TEST(CheckDeathTest, ScanRejectsForeignArrivals) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  BaseTuple bad;
  bad.stream = 9;  // no scan for this stream
  EXPECT_DEATH(engine.Push(bad), "no scan for stream");
}
#endif

}  // namespace
}  // namespace jisc
