#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "migration/moving_state.h"
#include "reference/naive_reference.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::DriveAndCompare;
using testutil::IdentityMultiset;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

std::unique_ptr<Engine> MakeEngine(const LogicalPlan& plan,
                                   const WindowSpec& windows, Sink* sink,
                                   ThetaSpec theta = ThetaSpec()) {
  Engine::Options opts;
  opts.exec.theta = theta;
  return std::make_unique<Engine>(plan, windows, sink, MakeJiscStrategy(),
                                  opts);
}

TEST(ExecTest, TwoWayJoinMatchesReference) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 8);
  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink);
  auto tuples = UniformWorkload(2, 4, 200);
  auto r = DriveAndCompare(engine.get(), &sink, 2, windows, tuples, {});
  EXPECT_TRUE(r.outputs_match) << r.outputs << " vs " << r.reference_outputs;
  EXPECT_TRUE(r.retractions_match);
  EXPECT_GT(r.outputs, 0u);
}

TEST(ExecTest, FourWayLeftDeepMatchesReference) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 10);
  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink);
  auto tuples = UniformWorkload(4, 5, 400);
  auto r = DriveAndCompare(engine.get(), &sink, 4, windows, tuples, {});
  EXPECT_TRUE(r.outputs_match) << r.outputs << " vs " << r.reference_outputs;
  EXPECT_TRUE(r.retractions_match);
  EXPECT_GT(r.outputs, 0u);
}

TEST(ExecTest, BushyPlanMatchesReference) {
  LogicalPlan plan = LogicalPlan::BalancedBushy(IdentityOrder(4),
                                                OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 10);
  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink);
  auto tuples = UniformWorkload(4, 5, 400);
  auto r = DriveAndCompare(engine.get(), &sink, 4, windows, tuples, {});
  EXPECT_TRUE(r.outputs_match);
  EXPECT_TRUE(r.retractions_match);
}

TEST(ExecTest, PerStreamWindowSizes) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::PerStream({4, 12, 7});
  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink);
  auto tuples = UniformWorkload(3, 4, 300);
  auto r = DriveAndCompare(engine.get(), &sink, 3, windows, tuples, {});
  EXPECT_TRUE(r.outputs_match);
  EXPECT_TRUE(r.retractions_match);
}

TEST(ExecTest, NestedLoopsEquiJoinMatchesReference) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kNljJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink);
  auto tuples = UniformWorkload(3, 4, 250);
  auto r = DriveAndCompare(engine.get(), &sink, 3, windows, tuples, {});
  EXPECT_TRUE(r.outputs_match);
  EXPECT_TRUE(r.retractions_match);
}

TEST(ExecTest, BandThetaJoinMatchesReference) {
  ThetaSpec theta;
  theta.band = 1;
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kNljJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 6);
  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink, theta);
  auto tuples = UniformWorkload(3, 6, 250);
  auto r = DriveAndCompare(engine.get(), &sink, 3, windows, tuples, {}, theta);
  EXPECT_TRUE(r.outputs_match);
  EXPECT_TRUE(r.retractions_match);
  EXPECT_GT(r.outputs, 0u);
}

TEST(ExecTest, MixedHashAndNljPlanMatchesReference) {
  LogicalPlan plan = LogicalPlan::LeftDeepMixed(
      {0, 1, 2}, {OpKind::kHashJoin, OpKind::kNljJoin});
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink);
  auto tuples = UniformWorkload(3, 4, 250);
  auto r = DriveAndCompare(engine.get(), &sink, 3, windows, tuples, {});
  EXPECT_TRUE(r.outputs_match);
  EXPECT_TRUE(r.retractions_match);
}

// Section 2.1: when the window slides, the arriving tuple must not join the
// tuple it displaces.
TEST(ExecTest, ArrivingTupleDoesNotJoinDisplacedTuple) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 1);  // window of one
  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink);
  BaseTuple a{.stream = 0, .key = 1, .payload = 0, .seq = 0};
  BaseTuple b{.stream = 1, .key = 1, .payload = 0, .seq = 1};
  BaseTuple b2{.stream = 1, .key = 1, .payload = 0, .seq = 2};
  engine->Push(a);
  engine->Push(b);   // joins with a -> 1 output
  engine->Push(b2);  // displaces b; joins with a -> 1 more output
  EXPECT_EQ(sink.outputs().size(), 2u);
  // b's expiry retracted the (a,b) result.
  EXPECT_EQ(sink.retractions().size(), 1u);
}

TEST(ExecTest, CountAggregateTracksLiveResult) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 6);
  CountAggregateSink agg;
  auto engine = MakeEngine(plan, windows, &agg);
  NaiveJoinReference ref(3, windows);
  auto tuples = UniformWorkload(3, 3, 300);
  for (const BaseTuple& t : tuples) {
    engine->Push(t);
    ref.Push(t, nullptr, nullptr);
  }
  EXPECT_EQ(agg.count(),
            static_cast<int64_t>(ref.CurrentResult().size()));
}

TEST(ExecTest, GroupCountMatchesReferenceGroups) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 6);
  GroupCountSink agg;
  auto engine = MakeEngine(plan, windows, &agg);
  NaiveJoinReference ref(2, windows);
  auto tuples = UniformWorkload(2, 3, 200);
  for (const BaseTuple& t : tuples) {
    engine->Push(t);
    ref.Push(t, nullptr, nullptr);
  }
  std::map<JoinKey, int64_t> expect;
  for (const Tuple& t : ref.CurrentResult()) expect[t.key()] += 1;
  EXPECT_EQ(agg.counts(), expect);
}

// Buffered admission (PushNoDrain + Drain) must be equivalent to per-event
// processing: the stamp-visibility rule makes output independent of queue
// scheduling.
TEST(ExecTest, BufferedAdmissionEquivalentToImmediate) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  auto tuples = UniformWorkload(3, 4, 240);

  CollectingSink immediate_sink;
  auto immediate = MakeEngine(plan, windows, &immediate_sink);
  for (const BaseTuple& t : tuples) immediate->Push(t);

  CollectingSink buffered_sink;
  auto buffered = MakeEngine(plan, windows, &buffered_sink);
  for (size_t i = 0; i < tuples.size(); ++i) {
    buffered->PushNoDrain(tuples[i]);
    if (i % 16 == 15) buffered->Drain();
  }
  buffered->Drain();

  EXPECT_EQ(IdentityMultiset(immediate_sink.outputs()),
            IdentityMultiset(buffered_sink.outputs()));
  EXPECT_EQ(IdentityMultiset(immediate_sink.retractions()),
            IdentityMultiset(buffered_sink.retractions()));
}

// Section 4.1: a transition requested while arrivals sit in the input
// queues first clears them through the old plan.
TEST(ExecTest, TransitionDrainsBufferedTuplesThroughOldPlan) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan new_plan =
      LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  auto tuples = UniformWorkload(4, 4, 300);

  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink);
  NaiveJoinReference ref(4, windows);
  std::vector<Tuple> ref_out;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i == 150) {
      // Buffer a burst, then request the transition without draining.
      for (size_t j = 0; j < 20 && i < tuples.size(); ++j, ++i) {
        engine->PushNoDrain(tuples[i]);
        ref.Push(tuples[i], &ref_out, nullptr);
      }
      ASSERT_TRUE(engine->RequestTransition(new_plan).ok());
    }
    if (i >= tuples.size()) break;
    engine->Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, nullptr);
  }
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out));
}

TEST(ExecTest, MetricsCountArrivalsAndOutputs) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink);
  auto tuples = UniformWorkload(2, 2, 100);
  for (const BaseTuple& t : tuples) engine->Push(t);
  EXPECT_EQ(engine->metrics().arrivals, 100u);
  EXPECT_EQ(engine->metrics().outputs, sink.outputs().size());
  EXPECT_GT(engine->metrics().probes, 0u);
  EXPECT_GT(engine->metrics().WorkUnits(), 0u);
}

TEST(ExecTest, ScanWindowBookkeeping) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 3);
  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink);
  for (Seq i = 0; i < 10; ++i) {
    BaseTuple t{.stream = 0, .key = static_cast<JoinKey>(i), .payload = 0,
                .seq = i};
    engine->Push(t);
  }
  StreamScan* scan = engine->executor().scan(0);
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->window_fill(), 3u);
  EXPECT_EQ(scan->OldestLiveSeq(), 7u);
  EXPECT_EQ(scan->state().live_size(), 3u);
  StreamScan* other = engine->executor().scan(1);
  EXPECT_EQ(other->window_fill(), 0u);
  EXPECT_EQ(other->OldestLiveSeq(), kStampInfinity);
}

TEST(ExecTest, RejectsTransitionToDifferentStreams) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 4);
  CollectingSink sink;
  auto engine = MakeEngine(plan, windows, &sink);
  LogicalPlan other = LogicalPlan::LeftDeep({1, 2}, OpKind::kHashJoin);
  EXPECT_FALSE(engine->RequestTransition(other).ok());
}

// The per-operator message queue is the admission path for arrivals;
// intra-event cascades use direct dispatch. The queue must still deliver
// every message kind correctly (it is public Operator API).
TEST(ExecTest, QueueDeliveryPathStillWorks) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  // Seed via normal pushes.
  BaseTuple a{.stream = 0, .key = 5, .payload = 1, .seq = 0};
  BaseTuple b{.stream = 1, .key = 5, .payload = 2, .seq = 1};
  engine.Push(a);
  engine.Push(b);
  ASSERT_EQ(sink.outputs().size(), 1u);
  // Hand-deliver a data message to the join through its queue.
  PipelineExecutor& exec = engine.executor();
  Operator* root = exec.root();
  Message m;
  m.kind = Message::Kind::kData;
  m.from = Side::kRight;
  m.stamp = 1000;
  BaseTuple c{.stream = 1, .key = 5, .payload = 3, .seq = 2};
  m.tuple = Tuple::FromBase(c, 1000, true);
  root->Enqueue(std::move(m));
  EXPECT_TRUE(root->HasWork());
  exec.RunUntilIdle();
  EXPECT_FALSE(root->HasWork());
  EXPECT_EQ(sink.outputs().size(), 2u);  // joined with the live S0 tuple
  // And a removal message.
  Message r;
  r.kind = Message::Kind::kRemoval;
  r.from = Side::kLeft;
  r.stamp = 1001;
  r.base = a;
  root->Enqueue(std::move(r));
  exec.RunUntilIdle();
  EXPECT_EQ(sink.retractions().size(), 2u);  // both combos contained a
}

TEST(ExecTest, EngineNameReflectsStrategy) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine jisc_engine(plan, windows, &sink, MakeJiscStrategy());
  EXPECT_EQ(jisc_engine.name(), "jisc");
  Engine ms_engine(plan, windows, &sink, MakeMovingStateStrategy());
  EXPECT_EQ(ms_engine.name(), "moving-state");
}

}  // namespace
}  // namespace jisc
