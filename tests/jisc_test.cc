// Scenario tests for the JISC mechanics of Section 4, mirroring the paper's
// running examples (Figures 2-5) and the Section 4.x subtleties.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "migration/moving_state.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

BaseTuple Mk(StreamId stream, JoinKey key, Seq seq) {
  BaseTuple b;
  b.stream = stream;
  b.key = key;
  b.seq = seq;
  return b;
}

struct JiscEngine {
  explicit JiscEngine(const LogicalPlan& plan, uint64_t window = 16,
                      JiscOptions jopts = JiscOptions(),
                      int num_streams = 4) {
    auto runtime = std::make_unique<JiscRuntime>(jopts);
    runtime_ = runtime.get();
    Engine::Options eopts;
    eopts.maintain_period = 8;
    engine = std::make_unique<Engine>(
        plan, WindowSpec::Uniform(num_streams, window), &sink,
        std::move(runtime), eopts);
  }

  JiscRuntime* runtime_ = nullptr;
  CollectingSink sink;
  std::unique_ptr<Engine> engine;
};

// Streams named as in the paper: R=0, S=1, T=2, U=3.
constexpr StreamId R = 0, S = 1, T = 2, U = 3;

// Figure 2 / Section 2.2 scenario 1 (Completeness): s, t, u arrive before
// the transition ((R|S)|T)|U -> ((S|T)|U)|R; r arrives right after. The
// quadruple (r, s, t, u) must be produced: state ST is incomplete and is
// completed on demand when r probes STU.
TEST(JiscScenarioTest, Figure2MissingOutputScenario) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep({R, S, T, U},
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({S, T, U, R},
                                               OpKind::kHashJoin);
  JiscEngine je(old_plan);
  je.engine->Push(Mk(S, 7, 0));
  je.engine->Push(Mk(T, 7, 1));
  je.engine->Push(Mk(U, 7, 2));
  EXPECT_TRUE(je.sink.outputs().empty());
  ASSERT_TRUE(je.engine->RequestTransition(new_plan).ok());
  EXPECT_GT(je.runtime_->num_incomplete(), 0);
  je.engine->Push(Mk(R, 7, 3));
  ASSERT_EQ(je.sink.outputs().size(), 1u);
  EXPECT_EQ(je.sink.outputs()[0].parts().size(), 4u);
}

// Closedness: same setup but the arriving tuple matches nothing; no
// spurious output may be produced even though incomplete states are probed.
TEST(JiscScenarioTest, NoSpuriousOutputAfterTransition) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep({R, S, T, U},
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({S, T, U, R},
                                               OpKind::kHashJoin);
  JiscEngine je(old_plan);
  je.engine->Push(Mk(S, 7, 0));
  je.engine->Push(Mk(T, 7, 1));
  // u never arrives with key 7.
  ASSERT_TRUE(je.engine->RequestTransition(new_plan).ok());
  je.engine->Push(Mk(R, 7, 2));
  je.engine->Push(Mk(R, 9, 3));
  EXPECT_TRUE(je.sink.outputs().empty());
}

// Section 4.2's sliding-window scenario (third scenario of Section 2.2):
// r, s, t arrive pre-transition; right after the transition S's window
// slides s out. The removal must propagate *through* the incomplete state
// ST and clear the copied RST entry, so u's later arrival finds nothing.
TEST(JiscScenarioTest, Section42WindowSlideThroughIncompleteState) {
  const uint64_t kWindow = 2;
  LogicalPlan old_plan = LogicalPlan::LeftDeep({R, S, T, U},
                                               OpKind::kHashJoin);
  // New plan where ST is incomplete but RST is complete (Fig. 3d-style):
  // ((S|T)|R)|U.
  LogicalPlan new_plan = LogicalPlan::LeftDeep({S, T, R, U},
                                               OpKind::kHashJoin);
  JiscEngine je(old_plan, kWindow);
  je.engine->Push(Mk(R, 7, 0));
  je.engine->Push(Mk(S, 7, 1));
  je.engine->Push(Mk(T, 7, 2));
  ASSERT_TRUE(je.engine->RequestTransition(new_plan).ok());
  // Slide s out of S's window with two unrelated S tuples.
  je.engine->Push(Mk(S, 100, 3));
  je.engine->Push(Mk(S, 101, 4));
  // u arrives; (r,s,t,u) must NOT be produced (s expired).
  je.engine->Push(Mk(U, 7, 5));
  EXPECT_TRUE(je.sink.outputs().empty());
}

// Definition 1 classification on the live engine after a reversal
// transition (Fig. 3b): UT and UTS incomplete, root and leaves complete.
TEST(JiscStateTest, Figure3bLiveClassification) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep({R, S, T, U},
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({U, T, S, R},
                                               OpKind::kHashJoin);
  JiscEngine je(old_plan);
  auto tuples = UniformWorkload(4, 4, 64);
  for (const auto& t : tuples) je.engine->Push(t);
  ASSERT_TRUE(je.engine->RequestTransition(new_plan).ok());
  PipelineExecutor& exec = je.engine->executor();
  auto set = [](std::initializer_list<StreamId> ss) {
    StreamSet acc;
    for (StreamId s : ss) acc = StreamSet::Union(acc, StreamSet::Single(s));
    return acc;
  };
  EXPECT_FALSE(exec.OpForStreams(set({U, T}))->state().complete());
  EXPECT_FALSE(exec.OpForStreams(set({U, T, S}))->state().complete());
  EXPECT_TRUE(exec.OpForStreams(set({U, T, S, R}))->state().complete());
  for (StreamId s : {R, S, T, U}) {
    EXPECT_TRUE(exec.OpForStreams(StreamSet::Single(s))->state().complete());
  }
  EXPECT_EQ(je.runtime_->num_incomplete(), 2);
}

// The copied state must actually carry its content: after the transition
// the reused state RST contains the pre-transition combinations.
TEST(JiscStateTest, ReusedStateKeepsContent) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep({R, S, T, U},
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({S, T, R, U},
                                               OpKind::kHashJoin);
  JiscEngine je(old_plan);
  je.engine->Push(Mk(R, 7, 0));
  je.engine->Push(Mk(S, 7, 1));
  je.engine->Push(Mk(T, 7, 2));
  auto rst = StreamSet::Union(
      StreamSet::Union(StreamSet::Single(R), StreamSet::Single(S)),
      StreamSet::Single(T));
  EXPECT_EQ(je.engine->executor().OpForStreams(rst)->state().live_size(), 1u);
  ASSERT_TRUE(je.engine->RequestTransition(new_plan).ok());
  Operator* op = je.engine->executor().OpForStreams(rst);
  ASSERT_NE(op, nullptr);
  EXPECT_TRUE(op->state().complete());
  EXPECT_EQ(op->state().live_size(), 1u);
}

// Section 4.5 (Figure 4): after overlapped transitions a state that exists
// in the previous plan but is still incomplete there must remain
// incomplete.
TEST(JiscStateTest, OverlappedTransitionKeepsIncompleteness) {
  LogicalPlan plan_a = LogicalPlan::LeftDeep({R, S, T, U}, OpKind::kHashJoin);
  LogicalPlan plan_b = LogicalPlan::LeftDeep({S, T, R, U}, OpKind::kHashJoin);
  LogicalPlan plan_c = LogicalPlan::LeftDeep({S, T, U, R}, OpKind::kHashJoin);
  JiscEngine je(plan_a, /*window=*/64);
  auto tuples = UniformWorkload(4, 4, 128);
  for (const auto& t : tuples) je.engine->Push(t);
  ASSERT_TRUE(je.engine->RequestTransition(plan_b).ok());
  auto st = StreamSet::Union(StreamSet::Single(S), StreamSet::Single(T));
  EXPECT_FALSE(je.engine->executor().OpForStreams(st)->state().complete());
  // Immediately transition again: ST exists in plan_b but is incomplete
  // there, so it must stay incomplete in plan_c (naive Definition 1 would
  // wrongly call it complete).
  ASSERT_TRUE(je.engine->RequestTransition(plan_c).ok());
  EXPECT_FALSE(je.engine->executor().OpForStreams(st)->state().complete());
}

// Section 4.4: completing the entries for one value happens at most once
// per state, even when several same-value tuples arrive.
TEST(JiscStateTest, RepeatedValueCompletesOnce) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep({R, S, T, U},
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({S, T, U, R},
                                               OpKind::kHashJoin);
  JiscEngine je(old_plan);
  je.engine->Push(Mk(S, 7, 0));
  je.engine->Push(Mk(T, 7, 1));
  je.engine->Push(Mk(U, 7, 2));
  ASSERT_TRUE(je.engine->RequestTransition(new_plan).ok());
  je.engine->Push(Mk(R, 7, 3));
  uint64_t completions_after_first = je.engine->metrics().completions;
  EXPECT_GT(completions_after_first, 0u);
  je.engine->Push(Mk(R, 7, 4));
  je.engine->Push(Mk(R, 7, 5));
  EXPECT_EQ(je.engine->metrics().completions, completions_after_first);
}

// Section 4.3, Case 1 and 2 counter initialization.
TEST(JiscTrackerTest, CounterCases) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep({R, S, T, U},
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({U, T, S, R},
                                               OpKind::kHashJoin);
  JiscEngine je(old_plan, /*window=*/32);
  // Distinct key counts: U gets keys {1,2,3}, T gets {1,2}, S {1}, R {1}.
  je.engine->Push(Mk(U, 1, 0));
  je.engine->Push(Mk(U, 2, 1));
  je.engine->Push(Mk(U, 3, 2));
  je.engine->Push(Mk(T, 1, 3));
  je.engine->Push(Mk(T, 2, 4));
  je.engine->Push(Mk(S, 1, 5));
  je.engine->Push(Mk(R, 1, 6));
  ASSERT_TRUE(je.engine->RequestTransition(new_plan).ok());
  // The transition itself is O(1) per tracker (like the paper's integer
  // counter); the pending-value snapshot happens on the first maintenance
  // sweep.
  je.runtime_->Maintain(je.engine.get());
  // UT: both children (U scan, T scan) complete -> Case 1; the smaller
  // child is T with 2 distinct values.
  PipelineExecutor& exec = je.engine->executor();
  auto ut = StreamSet::Union(StreamSet::Single(U), StreamSet::Single(T));
  const CompletionTracker* tr_ut =
      je.runtime_->tracker(exec.OpForStreams(ut)->node_id());
  ASSERT_NE(tr_ut, nullptr);
  EXPECT_EQ(tr_ut->init_case(), CompletionTracker::InitCase::kBothComplete);
  EXPECT_EQ(tr_ut->pending(), 2u);
  // UTS: left child UT incomplete, right child S complete -> Case 2 with
  // the complete child's (S's) 1 distinct value.
  auto uts = StreamSet::Union(ut, StreamSet::Single(S));
  const CompletionTracker* tr_uts =
      je.runtime_->tracker(exec.OpForStreams(uts)->node_id());
  ASSERT_NE(tr_uts, nullptr);
  EXPECT_EQ(tr_uts->init_case(), CompletionTracker::InitCase::kOneComplete);
  EXPECT_EQ(tr_uts->pending(), 1u);
}

// Case 3 (both children incomplete) arises for bushy targets; with the
// deferred rule the tracker initializes only once the children complete.
TEST(JiscTrackerTest, Case3DeferredOnBushyTarget) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep(IdentityOrder(8),
                                               OpKind::kHashJoin);
  // Bushy target over the reversed order: node {4,5,6,7} is new and both
  // its children {7,6} and {5,4} are new -> Case 3.
  LogicalPlan new_plan = LogicalPlan::BalancedBushy({7, 6, 5, 4, 3, 2, 1, 0},
                                                    OpKind::kHashJoin);
  JiscEngine je(old_plan, /*window=*/16, JiscOptions(), /*num_streams=*/8);
  auto tuples = UniformWorkload(8, 4, 128);
  for (const auto& t : tuples) je.engine->Push(t);
  ASSERT_TRUE(je.engine->RequestTransition(new_plan).ok());
  StreamSet upper;
  for (StreamId x : {4, 5, 6, 7}) {
    upper = StreamSet::Union(upper, StreamSet::Single(static_cast<StreamId>(x)));
  }
  Operator* op = je.engine->executor().OpForStreams(upper);
  ASSERT_NE(op, nullptr);
  const CompletionTracker* tr = je.runtime_->tracker(op->node_id());
  ASSERT_NE(tr, nullptr);
  EXPECT_EQ(tr->init_case(), CompletionTracker::InitCase::kNoneComplete);
  EXPECT_FALSE(tr->initialized());
}

// Counter-based detection: after every pending value has been probed, the
// state is declared complete by the Maintain sweep.
TEST(JiscTrackerTest, CounterDetectionMarksComplete) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep({R, S, T, U},
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({U, T, S, R},
                                               OpKind::kHashJoin);
  JiscEngine je(old_plan, /*window=*/64);
  // Two keys only, alternating on every stream, so two completions per
  // incomplete state finish it.
  for (Seq i = 0; i < 40; ++i) {
    je.engine->Push(Mk(static_cast<StreamId>(i % 4), 1 + ((i / 4) % 2), i));
  }
  ASSERT_TRUE(je.engine->RequestTransition(new_plan).ok());
  EXPECT_EQ(je.runtime_->num_incomplete(), 2);
  // Push tuples of both keys on every stream: probes complete both values
  // at both incomplete states; Maintain (period 8) then marks them.
  for (Seq i = 100; i < 140; ++i) {
    je.engine->Push(Mk(static_cast<StreamId>(i % 4), 1 + ((i / 4) % 2), i));
  }
  EXPECT_EQ(je.runtime_->num_incomplete(), 0);
  auto ut = StreamSet::Union(StreamSet::Single(U), StreamSet::Single(T));
  EXPECT_TRUE(je.engine->executor().OpForStreams(ut)->state().complete());
}

// Window-turnover fallback: with counters disabled, states become complete
// once every pre-transition tuple expired.
TEST(JiscTrackerTest, WindowTurnoverDetection) {
  JiscOptions jopts;
  jopts.detection = JiscOptions::DetectionMode::kWindowTurnoverOnly;
  LogicalPlan old_plan = LogicalPlan::LeftDeep({R, S, T, U},
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({U, T, S, R},
                                               OpKind::kHashJoin);
  const uint64_t kWindow = 8;
  JiscEngine je(old_plan, kWindow, jopts);
  auto tuples = UniformWorkload(4, 64, 200);  // sparse keys: few probes hit
  size_t i = 0;
  for (; i < 60; ++i) je.engine->Push(tuples[i]);
  ASSERT_TRUE(je.engine->RequestTransition(new_plan).ok());
  EXPECT_EQ(je.runtime_->num_incomplete(), 2);
  // 4 streams x window 8 = 32 tuples turn the windows over; add slack for
  // the Maintain period.
  for (; i < 130; ++i) je.engine->Push(tuples[i]);
  EXPECT_EQ(je.runtime_->num_incomplete(), 0);
}

// Procedure 2 (recursive) and Procedure 3 (left-deep spine walk) must do
// identical work and produce identical output.
TEST(JiscProcedureTest, LeftDeepProcedureEquivalent) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep(IdentityOrder(5),
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep(WorstCaseOrder(IdentityOrder(5)),
                                               OpKind::kHashJoin);
  auto tuples = UniformWorkload(5, 4, 600);

  auto run = [&](bool left_deep_proc) {
    JiscOptions j;
    j.use_left_deep_procedure = left_deep_proc;
    JiscEngine je(old_plan, /*window=*/8, j, /*num_streams=*/5);
    size_t i = 0;
    for (; i < 300; ++i) je.engine->Push(tuples[i]);
    EXPECT_TRUE(je.engine->RequestTransition(new_plan).ok());
    for (; i < tuples.size(); ++i) je.engine->Push(tuples[i]);
    return std::make_tuple(IdentityMultiset(je.sink.outputs()),
                           je.engine->metrics().completion_inserts,
                           je.engine->metrics().completions);
  };
  auto [out_p3, inserts_p3, completions_p3] = run(true);
  auto [out_p2, inserts_p2, completions_p2] = run(false);
  EXPECT_EQ(out_p3, out_p2);
  EXPECT_EQ(inserts_p3, inserts_p2);
  EXPECT_EQ(completions_p3, completions_p2);
}

// Section 4.7: an aggregate on top of the plan is a unary operator with an
// always-complete state; a transition must not perturb it.
TEST(JiscScenarioTest, AggregationUnaffectedByTransition) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({3, 2, 1, 0},
                                               OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CountAggregateSink agg;
  Engine engine(old_plan, windows, &agg, MakeJiscStrategy());
  NaiveJoinReference ref(4, windows);
  auto tuples = UniformWorkload(4, 4, 400);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i == 200) ASSERT_TRUE(engine.RequestTransition(new_plan).ok());
    engine.Push(tuples[i]);
    ref.Push(tuples[i], nullptr, nullptr);
  }
  EXPECT_EQ(agg.count(), static_cast<int64_t>(ref.CurrentResult().size()));
}

// The paper's literal Case-3 rule is available behind an option; on
// left-deep transition chains (no Case 3 states) it behaves identically.
TEST(JiscOptionsTest, PaperCase3RuleOnLeftDeepChains) {
  JiscOptions j;
  j.paper_case3 = true;
  LogicalPlan old_plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({3, 2, 1, 0},
                                               OpKind::kHashJoin);
  JiscEngine je(old_plan, /*window=*/8, j);
  NaiveJoinReference ref(4, WindowSpec::Uniform(4, 8));
  std::vector<Tuple> ref_out;
  auto tuples = UniformWorkload(4, 4, 400);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i == 200) ASSERT_TRUE(je.engine->RequestTransition(new_plan).ok());
    je.engine->Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, nullptr);
  }
  EXPECT_EQ(IdentityMultiset(je.sink.outputs()), IdentityMultiset(ref_out));
}

// Moving State leaves every state complete and content-identical to a
// freshly rebuilt (never-migrated) engine.
TEST(MovingStateTest, EagerStatesMatchFreshEngine) {
  LogicalPlan old_plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                               OpKind::kHashJoin);
  LogicalPlan new_plan = LogicalPlan::LeftDeep({2, 3, 0, 1},
                                               OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CollectingSink sink_a;
  Engine migrated(old_plan, windows, &sink_a, MakeMovingStateStrategy());
  CollectingSink sink_b;
  Engine fresh(new_plan, windows, &sink_b, MakeMovingStateStrategy());
  auto tuples = UniformWorkload(4, 3, 200);
  for (const auto& t : tuples) {
    migrated.Push(t);
    fresh.Push(t);
  }
  ASSERT_TRUE(migrated.RequestTransition(new_plan).ok());
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    const OperatorState& a = migrated.executor().op(id)->state();
    const OperatorState& b = fresh.executor().op(id)->state();
    EXPECT_TRUE(a.complete());
    EXPECT_EQ(a.live_size(), b.live_size()) << "node " << id;
    EXPECT_EQ(a.DistinctLiveKeys(), b.DistinctLiveKeys()) << "node " << id;
  }
}

}  // namespace
}  // namespace jisc
