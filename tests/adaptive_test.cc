#include <gtest/gtest.h>

#include "core/jisc_runtime.h"
#include "reference/naive_reference.h"
#include "tests/test_util.h"
#include "workload/adaptive.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;

SourceConfig SkewedConfig() {
  SourceConfig cfg;
  cfg.num_streams = 4;
  cfg.key_domain = 512;
  // Stream 0 dense (high fan-out), stream 3 sparse.
  cfg.per_stream_key_domain = {16, 64, 256, 512};
  cfg.seed = 3;
  return cfg;
}

TEST(AdaptiveControllerTest, ConvergesToAscendingFanout) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 128);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  AdaptiveController::Options opts;
  opts.evaluate_period = 256;
  AdaptiveController ctl(&engine, opts);
  SyntheticSource src(SkewedConfig());
  for (int i = 0; i < 4000; ++i) ctl.Push(src.Next());
  auto order = engine.plan().LeftDeepOrder();
  ASSERT_TRUE(order.ok());
  // Sparse streams migrate to the bottom; the dense stream 0 to the top.
  EXPECT_EQ(order.value().back(), 0);
  EXPECT_GE(ctl.transitions(), 1u);
  // Fan-out estimates reflect the domains.
  EXPECT_GT(ctl.fanout(0), ctl.fanout(3));
}

TEST(AdaptiveControllerTest, SketchModeConvergesLikeExact) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 128);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  AdaptiveController::Options opts;
  opts.evaluate_period = 512;
  opts.use_sketches = true;
  AdaptiveController ctl(&engine, opts);
  SyntheticSource src(SkewedConfig());
  for (int i = 0; i < 6000; ++i) ctl.Push(src.Next());
  auto order = engine.plan().LeftDeepOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value().back(), 0);  // densest stream on top
  EXPECT_GE(ctl.transitions(), 1u);
  EXPECT_GT(ctl.fanout(0), ctl.fanout(3));
}

TEST(AdaptiveControllerTest, NoThrashingOnUniformStreams) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 64);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  AdaptiveController::Options opts;
  opts.evaluate_period = 128;
  AdaptiveController ctl(&engine, opts);
  SourceConfig cfg;
  cfg.num_streams = 4;
  cfg.key_domain = 128;  // identical statistics on every stream
  SyntheticSource src(cfg);
  for (int i = 0; i < 4000; ++i) ctl.Push(src.Next());
  // Statistical noise must not trigger migrations (hysteresis).
  EXPECT_LE(ctl.transitions(), 1u);
}

TEST(AdaptiveControllerTest, OutputStaysCorrectUnderAutoMigrations) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 16);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  AdaptiveController::Options opts;
  opts.evaluate_period = 64;
  opts.min_window_fill = 4;
  AdaptiveController ctl(&engine, opts);
  SourceConfig cfg;
  cfg.num_streams = 3;
  cfg.key_domain = 64;
  cfg.per_stream_key_domain = {4, 16, 64};
  cfg.seed = 21;
  SyntheticSource src(cfg);
  NaiveJoinReference ref(3, windows);
  std::vector<Tuple> ref_out;
  std::vector<Tuple> ref_ret;
  for (int i = 0; i < 3000; ++i) {
    BaseTuple t = src.Next();
    ctl.Push(t);
    ref.Push(t, &ref_out, &ref_ret);
  }
  EXPECT_GE(ctl.transitions(), 1u);
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out));
  EXPECT_EQ(IdentityMultiset(sink.retractions()),
            IdentityMultiset(ref_ret));
}

TEST(AdaptiveControllerTest, CostModelPrefersAscendingOrder) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 128);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  AdaptiveController ctl(&engine);
  SyntheticSource src(SkewedConfig());
  // Feed without evaluations (direct engine pushes) to control the state.
  for (int i = 0; i < 2000; ++i) engine.Push(src.Next());
  double asc = ctl.EstimateCost({3, 2, 1, 0});
  double desc = ctl.EstimateCost({0, 1, 2, 3});
  EXPECT_LT(asc, desc);
  EXPECT_EQ(ctl.AdvisedOrder(), (std::vector<StreamId>{3, 2, 1, 0}));
}

TEST(AdaptiveControllerTest, LeavesBushyPlansAlone) {
  LogicalPlan plan = LogicalPlan::BalancedBushy({0, 1, 2, 3},
                                                OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 64);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  AdaptiveController::Options opts;
  opts.evaluate_period = 64;
  AdaptiveController ctl(&engine, opts);
  SyntheticSource src(SkewedConfig());
  for (int i = 0; i < 2000; ++i) ctl.Push(src.Next());
  EXPECT_EQ(ctl.transitions(), 0u);
  EXPECT_FALSE(engine.plan().IsLeftDeep());
}

TEST(AdaptiveControllerTest, PreservesJoinKindsAcrossMigration) {
  LogicalPlan plan = LogicalPlan::LeftDeepMixed(
      {0, 1, 2}, {OpKind::kHashJoin, OpKind::kNljJoin});
  WindowSpec windows = WindowSpec::Uniform(3, 64);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  AdaptiveController::Options opts;
  opts.evaluate_period = 128;
  AdaptiveController ctl(&engine, opts);
  SourceConfig cfg;
  cfg.num_streams = 3;
  cfg.key_domain = 256;
  cfg.per_stream_key_domain = {8, 64, 256};
  SyntheticSource src(cfg);
  for (int i = 0; i < 3000; ++i) ctl.Push(src.Next());
  ASSERT_GE(ctl.transitions(), 1u);
  // The level kinds survive the reorder (bottom hash, top NLJ).
  const LogicalPlan& p = engine.plan();
  EXPECT_EQ(p.node(p.root()).kind, OpKind::kNljJoin);
}

}  // namespace
}  // namespace jisc
