// Scenario harness: JSON model, strict spec parsing, deterministic runs,
// and the baseline-diff contract behind `jiscbench compare`.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "scenario/baseline.h"
#include "scenario/bundle.h"
#include "scenario/json.h"
#include "scenario/runner.h"
#include "scenario/spec.h"

namespace jisc {
namespace scenario {
namespace {

// ---------------------------------------------------------------- Json --

TEST(JsonTest, ParsePreservesIntegersExactly) {
  auto j = Json::Parse("{\"a\": 9007199254740993, \"b\": 1.5, \"c\": -3}");
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  const Json* a = j.value().Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->is_int());
  // 2^53 + 1 is not representable as a double; an int64 path must keep it.
  EXPECT_EQ(a->AsInt(), INT64_C(9007199254740993));
  EXPECT_EQ(j.value().Find("b")->kind(), Json::Kind::kDouble);
  EXPECT_EQ(j.value().Find("c")->AsInt(), -3);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  auto j = Json::Parse("{\"z\": 1, \"a\": 2, \"m\": 3}");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value().Dump(), "{\"z\":1,\"a\":2,\"m\":3}");
}

TEST(JsonTest, DumpParseRoundTripIsByteIdentical) {
  const std::string text =
      "{\"s\":\"he\\\"llo\\n\",\"n\":null,\"t\":true,\"arr\":[1,2.5,"
      "{\"k\":-7}],\"big\":123456789012345}";
  auto j = Json::Parse(text);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_EQ(j.value().Dump(), text);
  auto again = Json::Parse(j.value().Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().Dump(), text);
}

TEST(JsonTest, RejectsDuplicateKeys) {
  auto j = Json::Parse("{\"a\": 1, \"a\": 2}");
  EXPECT_FALSE(j.ok());
}

TEST(JsonTest, RejectsTrailingContent) {
  EXPECT_FALSE(Json::Parse("{} extra").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
}

TEST(JsonTest, ErrorsCarryLineAndColumn) {
  auto j = Json::Parse("{\n  \"a\": 1,\n  bad\n}");
  ASSERT_FALSE(j.ok());
  EXPECT_NE(j.status().message().find("line 3"), std::string::npos)
      << j.status().ToString();
}

TEST(JsonTest, DecodesUnicodeEscapes) {
  auto j = Json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value().AsString(), "A\xc3\xa9");
}

// ---------------------------------------------------------------- Spec --

// A spec exercising every optional field, authored small enough that the
// runner tests below stay fast at scale 1.
Spec TestSpec() {
  Spec s;
  s.name = "unit";
  s.description = "unit-test scenario";
  s.seed = 7;
  s.streams = 3;
  s.window = 100;
  s.warmup_windows = 1;
  PhaseSpec steady;
  steady.label = "steady";
  steady.tuples = 1500;
  PhaseSpec burst;
  burst.label = "burst";
  burst.tuples = 500;
  burst.force_stream = 1;
  burst.key_domain = 40;
  s.phases = {steady, burst};
  EventSpec t1;
  t1.at = 600;
  t1.action = EventSpec::Action::kTransition;
  t1.transition = TransitionKind::kBestCase;
  s.schedule = {t1};
  s.strategy = "jisc";
  s.thresholds["wall.measured_seconds"] = 0.75;
  return s;
}

TEST(SpecTest, ParseSpecToJsonRoundTrip) {
  Spec s = TestSpec();
  Json j = SpecToJson(s);
  auto parsed = ParseSpec(j);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // The inverse serialization must reproduce the document byte for byte.
  EXPECT_EQ(SpecToJson(parsed.value()).Dump(), j.Dump());
  EXPECT_EQ(parsed.value().name, "unit");
  EXPECT_EQ(parsed.value().seed, 7u);
  ASSERT_EQ(parsed.value().phases.size(), 2u);
  EXPECT_EQ(parsed.value().phases[1].force_stream, StreamId{1});
  ASSERT_EQ(parsed.value().schedule.size(), 1u);
  EXPECT_EQ(parsed.value().schedule[0].transition, TransitionKind::kBestCase);
  EXPECT_EQ(parsed.value().thresholds.at("wall.measured_seconds"), 0.75);
}

TEST(SpecTest, RejectsUnknownTopLevelKey) {
  auto s = ParseSpecText(
      "{\"name\": \"x\", \"windwo\": 100, "
      "\"phases\": [{\"tuples\": 10}]}");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("windwo"), std::string::npos)
      << s.status().ToString();
}

TEST(SpecTest, RejectsUnknownNestedKeys) {
  EXPECT_FALSE(ParseSpecText("{\"name\": \"x\", "
                             "\"arrival\": {\"keypattern\": \"random\"}, "
                             "\"phases\": [{\"tuples\": 10}]}")
                   .ok());
  EXPECT_FALSE(ParseSpecText("{\"name\": \"x\", "
                             "\"phases\": [{\"tuples\": 10, \"burst\": 1}]}")
                   .ok());
  EXPECT_FALSE(
      ParseSpecText("{\"name\": \"x\", \"phases\": [{\"tuples\": 10}], "
                    "\"schedule\": [{\"at\": 5, \"transition\": "
                    "\"best_case\", \"extra\": true}]}")
          .ok());
}

TEST(SpecTest, ValidatesSemantics) {
  Spec s = TestSpec();
  s.phases[0].tuples = 0;
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = TestSpec();
  s.schedule[0].at = TotalMeasuredTuples(s) + 1;
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = TestSpec();
  s.strategy = "cacq";
  s.parallelism = 4;  // eddies are single-threaded
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = TestSpec();
  s.strategy = "cacq";
  EventSpec cp;
  cp.at = 100;
  cp.action = EventSpec::Action::kCheckpointRestore;
  s.schedule.push_back(cp);  // checkpoint needs an engine strategy
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = TestSpec();
  s.strategy = "no-such-strategy";
  EXPECT_FALSE(ValidateSpec(s).ok());
}

TEST(SpecTest, EventRequiresExactlyOneAction) {
  EXPECT_FALSE(
      ParseSpecText("{\"name\": \"x\", \"phases\": [{\"tuples\": 10}], "
                    "\"schedule\": [{\"at\": 5}]}")
          .ok());
  EXPECT_FALSE(
      ParseSpecText("{\"name\": \"x\", \"phases\": [{\"tuples\": 10}], "
                    "\"schedule\": [{\"at\": 5, \"transition\": "
                    "\"best_case\", \"checkpoint_restore\": true}]}")
          .ok());
}

// -------------------------------------------------------------- Runner --

TEST(RunnerTest, SameSeedRunsAreByteIdentical) {
  Spec s = TestSpec();
  auto a = RunScenario(s);
  auto b = RunScenario(s);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(SerializeDeterministic(a.value()),
            SerializeDeterministic(b.value()));
  EXPECT_EQ(a.value().transitions, 1u);
  EXPECT_GT(a.value().measured_tuples, 0u);
}

TEST(RunnerTest, ShardedRunsAreByteIdentical) {
  Spec s = TestSpec();
  s.streams = 4;
  s.parallelism = 2;
  auto a = RunScenario(s);
  auto b = RunScenario(s);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(SerializeDeterministic(a.value()),
            SerializeDeterministic(b.value()));
}

TEST(RunnerTest, SeedChangesTheDeterministicSection) {
  Spec s = TestSpec();
  s.arrival.key_pattern = KeyPattern::kRandom;
  s.arrival.key_domain = 60;
  auto a = RunScenario(s);
  RunOptions other;
  other.seed = 12345;
  auto b = RunScenario(s, other);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(SerializeDeterministic(a.value()),
            SerializeDeterministic(b.value()));
}

TEST(RunnerTest, StrategyOverrideIsRecorded) {
  Spec s = TestSpec();
  RunOptions opts;
  opts.strategy = "moving-state";
  auto r = RunScenario(s, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().strategy, "moving-state");
}

TEST(RunnerTest, InvalidOverrideIsRejected) {
  Spec s = TestSpec();
  RunOptions opts;
  opts.strategy = "cacq";
  opts.parallelism = 4;  // valid spec, invalid combination
  EXPECT_FALSE(RunScenario(s, opts).ok());
}

TEST(SpecTest, TelemetryAndFaultRoundTrip) {
  Spec s = TestSpec();
  s.streams = 4;
  s.parallelism = 4;
  s.telemetry.enabled = true;
  s.telemetry.period_ms = 5;
  s.telemetry.watchdog_samples = 4;
  s.telemetry.expect_straggler_shard = 2;
  s.fault.straggler_shard = 2;
  s.fault.stall_ms = 30;
  s.fault.stall_every = 2000;
  Json j = SpecToJson(s);
  auto parsed = ParseSpec(j);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SpecToJson(parsed.value()).Dump(), j.Dump());
  EXPECT_TRUE(parsed.value().telemetry.enabled);
  EXPECT_EQ(parsed.value().telemetry.period_ms, 5u);
  EXPECT_EQ(parsed.value().telemetry.watchdog_samples, 4);
  ASSERT_TRUE(parsed.value().telemetry.expect_straggler_shard.has_value());
  EXPECT_EQ(*parsed.value().telemetry.expect_straggler_shard, 2);
  EXPECT_EQ(parsed.value().fault.straggler_shard, 2);
  EXPECT_EQ(parsed.value().fault.stall_ms, 30u);
  EXPECT_EQ(parsed.value().fault.stall_every, 2000u);
  // Defaulted sections stay out of the document entirely.
  EXPECT_EQ(SpecToJson(TestSpec()).Dump().find("telemetry"),
            std::string::npos);
  EXPECT_EQ(SpecToJson(TestSpec()).Dump().find("fault"), std::string::npos);
}

TEST(SpecTest, ValidatesTelemetryAndFaultSemantics) {
  auto valid = [] {
    Spec s = TestSpec();
    s.streams = 4;
    s.parallelism = 4;
    return s;
  };

  Spec s = valid();
  s.telemetry.enabled = true;
  s.telemetry.watchdog_samples = 1;  // needs >= 2 to difference progress
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = valid();
  s.telemetry.expect_no_stragglers = true;  // expectation without telemetry
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = valid();
  s.telemetry.enabled = true;
  s.telemetry.expect_no_stragglers = true;
  s.telemetry.expect_straggler_shard = 1;  // mutually exclusive
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = valid();
  s.telemetry.enabled = true;
  s.telemetry.expect_straggler_shard = 4;  // out of [0, parallelism)
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = valid();
  s.parallelism = 1;
  s.fault.straggler_shard = 0;  // needs a sharded run
  s.fault.stall_ms = 10;
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = valid();
  s.fault.straggler_shard = 2;  // delay without a duration
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = valid();
  s.fault.stall_ms = 10;  // duration without a target shard
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = valid();
  s.fault.straggler_shard = 2;
  s.fault.stall_ms = 10;
  EXPECT_TRUE(ValidateSpec(s).ok());
}

TEST(SpecTest, DropEveryRoundTripAndValidation) {
  Spec s = TestSpec();
  s.fault.drop_every = 5;
  Json j = SpecToJson(s);
  auto parsed = ParseSpec(j);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().fault.drop_every, 5u);
  EXPECT_EQ(SpecToJson(parsed.value()).Dump(), j.Dump());
  // Orthogonal to the straggler fields: the emitted fault section carries
  // only the drop knob, and the spec is valid at parallelism 1.
  EXPECT_EQ(j.Dump().find("straggler_shard"), std::string::npos);
  EXPECT_TRUE(ValidateSpec(s).ok());
  // drop_every == 1 would drop every measured arrival.
  s.fault.drop_every = 1;
  EXPECT_FALSE(ValidateSpec(s).ok());
}

TEST(SpecTest, IngressAndNewFaultsRoundTrip) {
  Spec s = TestSpec();
  s.fault.duplicate_every = 6;
  s.fault.reorder_window = 32;
  s.fault.drop_burst = 50;
  s.fault.drop_burst_at = 900;
  s.ingress.enabled = true;
  s.ingress.dedup_window = 256;
  s.ingress.reorder_window = 64;
  s.ingress.overflow = "drop_late";
  Json j = SpecToJson(s);
  auto parsed = ParseSpec(j);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SpecToJson(parsed.value()).Dump(), j.Dump());
  EXPECT_EQ(parsed.value().fault.duplicate_every, 6u);
  EXPECT_EQ(parsed.value().fault.reorder_window, 32u);
  EXPECT_EQ(parsed.value().fault.drop_burst, 50u);
  EXPECT_EQ(parsed.value().fault.drop_burst_at, 900u);
  EXPECT_TRUE(parsed.value().ingress.enabled);
  EXPECT_EQ(parsed.value().ingress.dedup_window, 256u);
  EXPECT_EQ(parsed.value().ingress.reorder_window, 64u);
  EXPECT_EQ(parsed.value().ingress.overflow, "drop_late");
  // A default spec keeps both sections out of the document.
  EXPECT_EQ(SpecToJson(TestSpec()).Dump().find("ingress"),
            std::string::npos);
}

TEST(SpecTest, MigrationAndExpectRoundTrip) {
  Spec s = TestSpec();
  s.migration.mode = "fluid";
  s.migration.batch_keys = 7;
  s.migration.delay_budget_us = 250;
  s.expect.output_delay_p99_us = 2000;
  Json j = SpecToJson(s);
  auto parsed = ParseSpec(j);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SpecToJson(parsed.value()).Dump(), j.Dump());
  EXPECT_EQ(parsed.value().migration.mode, "fluid");
  EXPECT_EQ(parsed.value().migration.batch_keys, 7u);
  EXPECT_EQ(parsed.value().migration.delay_budget_us, 250u);
  ASSERT_TRUE(parsed.value().expect.output_delay_p99_us.has_value());
  EXPECT_EQ(*parsed.value().expect.output_delay_p99_us, 2000u);
  // The engine-level options the runner derives from the block.
  FluidOptions fluid = ToFluidOptions(parsed.value().migration);
  EXPECT_TRUE(fluid.IsFluid());
  EXPECT_EQ(fluid.batch_keys, 7u);
  EXPECT_EQ(fluid.delay_budget_us, 250u);
  // All-default specs keep both sections out of the document.
  EXPECT_EQ(SpecToJson(TestSpec()).Dump().find("migration"),
            std::string::npos);
  EXPECT_EQ(SpecToJson(TestSpec()).Dump().find("expect"),
            std::string::npos);
  EXPECT_FALSE(ToFluidOptions(TestSpec().migration).IsFluid());
}

TEST(SpecTest, RejectsUnknownMigrationKeys) {
  EXPECT_FALSE(
      ParseSpecText("{\"name\": \"x\", \"phases\": [{\"tuples\": 10}], "
                    "\"migration\": {\"mode\": \"fluid\", "
                    "\"batchkeys\": 8}}")
          .ok());
  EXPECT_FALSE(
      ParseSpecText("{\"name\": \"x\", \"phases\": [{\"tuples\": 10}], "
                    "\"expect\": {\"output_delay_p99\": 100}}")
          .ok());
}

TEST(SpecTest, ValidatesMigrationAndExpectSemantics) {
  Spec s = TestSpec();
  s.migration.mode = "gradual";  // not a mode
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = TestSpec();
  s.migration.mode = "fluid";
  EXPECT_TRUE(ValidateSpec(s).ok());  // default strategy (jisc) migrates

  s = TestSpec();
  s.migration.mode = "fluid";
  s.strategy = "cacq";  // eddies have no migration stage to pace
  s.schedule.clear();   // (transition schedule is jisc-specific in TestSpec)
  auto status = ValidateSpec(s);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cacq"), std::string::npos)
      << status.ToString();

  s = TestSpec();
  s.expect.output_delay_p99_us = 0;  // a zero ceiling gates nothing
  EXPECT_FALSE(ValidateSpec(s).ok());
}

TEST(SpecTest, TimeWindowModeRoundTrip) {
  Spec s = TestSpec();
  s.window_mode = "time";
  s.arrival.ts_stride = 4;
  Json j = SpecToJson(s);
  auto parsed = ParseSpec(j);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SpecToJson(parsed.value()).Dump(), j.Dump());
  EXPECT_EQ(parsed.value().window_mode, "time");
  EXPECT_EQ(parsed.value().arrival.ts_stride, 4u);
  // Count mode (the default) stays out of the document.
  EXPECT_EQ(SpecToJson(TestSpec()).Dump().find("window_mode"),
            std::string::npos);
}

TEST(SpecTest, ValidatesIngressAndFaultSemantics) {
  Spec s = TestSpec();
  s.fault.duplicate_every = 1;  // would duplicate every arrival
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = TestSpec();
  s.fault.drop_burst_at = 100;  // offset without a burst length
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = TestSpec();
  s.fault.drop_burst = 10;
  s.fault.drop_burst_at = 2000;  // at/past the end of the measured run
  EXPECT_FALSE(ValidateSpec(s).ok());
  s.fault.drop_burst_at = 1999;
  EXPECT_TRUE(ValidateSpec(s).ok());

  s = TestSpec();
  s.ingress.enabled = true;
  s.ingress.overflow = "panic";  // not a policy
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = TestSpec();
  s.ingress.enabled = true;
  s.ingress.dedup_window = 0;  // a zero buffer cannot dedup
  EXPECT_FALSE(ValidateSpec(s).ok());

  s = TestSpec();
  s.ingress.enabled = true;
  s.ingress.anomaly_threshold = 5;  // watchdog needs telemetry on
  EXPECT_FALSE(ValidateSpec(s).ok());
  s.telemetry.enabled = true;
  EXPECT_TRUE(ValidateSpec(s).ok());

  s = TestSpec();
  s.arrival.ts_stride = 4;  // stride is meaningless for count windows
  EXPECT_FALSE(ValidateSpec(s).ok());
  s.window_mode = "time";
  EXPECT_TRUE(ValidateSpec(s).ok());

  s = TestSpec();
  s.window_mode = "sliding";  // not a mode
  EXPECT_FALSE(ValidateSpec(s).ok());
}

TEST(RunnerTest, FluidRunsAreByteIdenticalAndPassTheExpectGate) {
  Spec s = TestSpec();
  s.migration.mode = "fluid";
  s.migration.batch_keys = 4;
  s.migration.delay_budget_us = 10;
  // Generous ceiling: the gate exists to catch pathological stalls, and
  // the runner floors it anyway; what this test locks in is that the
  // fluid path evaluates the expect block without tripping on a healthy
  // run, and that fluid pacing is deterministic end to end.
  s.expect.output_delay_p99_us = 500000;
  auto a = RunScenario(s);
  auto b = RunScenario(s);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(SerializeDeterministic(a.value()),
            SerializeDeterministic(b.value()));
  EXPECT_EQ(a.value().transitions, 1u);
  EXPECT_GT(a.value().measured_tuples, 0u);
}

TEST(RunnerTest, TimeWindowRunsAreByteIdentical) {
  Spec s = TestSpec();
  s.window_mode = "time";
  s.arrival.ts_stride = 4;
  auto a = RunScenario(s);
  auto b = RunScenario(s);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SerializeDeterministic(a.value()),
            SerializeDeterministic(b.value()));
  EXPECT_EQ(a.value().transitions, 1u);
  // Widening the stride changes expiry timing, hence the work done.
  Spec wider = s;
  wider.arrival.ts_stride = 8;
  auto c = RunScenario(wider);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(SerializeDeterministic(a.value()),
            SerializeDeterministic(c.value()));
}

TEST(RunnerTest, DuplicateAndReorderFaultsAreSeedStable) {
  Spec s = TestSpec();
  s.schedule.clear();
  s.strategy = "cacq";  // eddy windows absorb out-of-order feeds
  s.fault.duplicate_every = 5;
  s.fault.reorder_window = 16;
  auto a = RunScenario(s);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  // 2000 measured arrivals: every 5th re-delivered.
  EXPECT_EQ(a.value().duplicated_arrivals, 400u);
  EXPECT_GT(a.value().reordered_arrivals, 0u);
  auto b = RunScenario(s);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SerializeDeterministic(a.value()),
            SerializeDeterministic(b.value()));
  // A different seed shuffles differently.
  Spec other = s;
  other.seed = 43;
  auto c = RunScenario(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value().reordered_arrivals, c.value().reordered_arrivals);
}

TEST(RunnerTest, DropBurstComposesWithDropEvery) {
  Spec s = TestSpec();
  s.schedule.clear();
  s.fault.drop_every = 4;
  s.fault.drop_burst = 100;
  s.fault.drop_burst_at = 500;
  auto r = RunScenario(s);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 500 periodic drops; the burst spans [500, 600), 25 of which coincide
  // with a periodic drop, so the burst adds 75 unique drops.
  EXPECT_EQ(r.value().dropped_arrivals, 575u);
  auto again = RunScenario(s);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(SerializeDeterministic(r.value()),
            SerializeDeterministic(again.value()));
}

// The tentpole recovery property: under duplicate + reorder corruption the
// guard restores the exact clean-run deterministic counters, at every
// processor kind and at 4-shard parallelism.
TEST(RunnerTest, GuardRestoresCleanCountersAtEveryKind) {
  const char* kKinds[] = {"jisc",        "jisc-first-receipt",
                          "moving-state", "parallel-track",
                          "hybrid-track", "cacq",
                          "mjoin",        "stairs-eager",
                          "stairs-jisc",  "pipeline-shj"};
  for (const char* kind : kKinds) {
    Spec clean = TestSpec();
    clean.schedule.clear();
    clean.strategy = kind;
    auto base = RunScenario(clean);
    ASSERT_TRUE(base.ok()) << kind << ": " << base.status().ToString();

    Spec faulted = clean;
    faulted.fault.duplicate_every = 5;
    faulted.fault.reorder_window = 16;
    faulted.ingress.enabled = true;
    faulted.ingress.dedup_window = 256;
    faulted.ingress.reorder_window = 64;
    auto guarded = RunScenario(faulted);
    ASSERT_TRUE(guarded.ok()) << kind << ": " << guarded.status().ToString();
    EXPECT_EQ(guarded.value().counters, base.value().counters)
        << "guard failed to restore the clean feed for " << kind;
    EXPECT_EQ(guarded.value().duplicates_suppressed,
              guarded.value().duplicated_arrivals)
        << kind;
    EXPECT_EQ(guarded.value().late_admitted, 0u) << kind;
    EXPECT_EQ(guarded.value().late_dropped, 0u) << kind;
  }
  // The same property across the sharded coordinator (guard wraps the
  // whole ParallelExecutor, so shards see a clean ordered feed).
  Spec clean = TestSpec();
  clean.schedule.clear();
  clean.streams = 4;
  clean.parallelism = 4;
  auto base = RunScenario(clean);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  Spec faulted = clean;
  faulted.fault.duplicate_every = 5;
  faulted.fault.reorder_window = 16;
  faulted.ingress.enabled = true;
  auto guarded = RunScenario(faulted);
  ASSERT_TRUE(guarded.ok()) << guarded.status().ToString();
  EXPECT_EQ(guarded.value().counters, base.value().counters)
      << "guard failed to restore the clean feed at parallelism 4";
}

TEST(RunnerTest, GuardedCheckpointRestoreContinuesTheRun) {
  // S16 checkpoint/restore mid-run with the guard enabled and faults
  // active: the guarded checkpoint carries the guard state, so the run
  // continues as if uninterrupted.
  Spec s = TestSpec();
  s.fault.duplicate_every = 5;
  s.fault.reorder_window = 16;
  s.ingress.enabled = true;
  s.schedule.clear();
  EventSpec cp;
  cp.at = 1200;
  cp.action = EventSpec::Action::kCheckpointRestore;
  s.schedule = {cp};
  auto with_cp = RunScenario(s);
  ASSERT_TRUE(with_cp.ok()) << with_cp.status().ToString();
  EXPECT_EQ(with_cp.value().checkpoint_restores, 1u);
  s.schedule.clear();
  auto without = RunScenario(s);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with_cp.value().counters, without.value().counters);
  EXPECT_EQ(with_cp.value().duplicates_suppressed,
            without.value().duplicates_suppressed);
}

TEST(RunnerTest, TelemetryDoesNotPerturbTheDeterministicSection) {
  Spec s = TestSpec();
  s.streams = 4;
  s.parallelism = 2;
  auto off = RunScenario(s);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  RunOptions with_telemetry;
  with_telemetry.telemetry_period_ms = 1;
  auto on = RunScenario(s, with_telemetry);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  // The sampled series is wall-clock noise by construction; the
  // deterministic sections must stay byte-identical with sampling live.
  EXPECT_EQ(SerializeDeterministic(off.value()),
            SerializeDeterministic(on.value()));
  EXPECT_FALSE(off.value().telemetry.enabled);
  EXPECT_TRUE(on.value().telemetry.enabled);
  EXPECT_GE(on.value().telemetry.samples, 1u);
  EXPECT_GE(on.value().telemetry.series.size(), 1u);

  // The bundle carries the telemetry summary and it survives a parse.
  Json j = RunResultToJson(on.value());
  auto back = RunResultFromJson(j);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value().telemetry.enabled);
  EXPECT_EQ(back.value().telemetry.samples, on.value().telemetry.samples);
  EXPECT_EQ(RunResultToJson(off.value()).Dump().find("telemetry"),
            std::string::npos);
}

TEST(RunnerTest, WatchdogFlagsExactlyTheDelayedShard) {
  // Fault injection delays shard 2 (30ms stalls every 2000 events) against
  // siblings kept busy by a long random-key phase; the spec's expectation
  // makes RunScenario itself fail unless the watchdog flags shard 2 and
  // only shard 2.
  Spec s;
  s.name = "straggler-inject";
  s.seed = 42;
  s.streams = 4;
  s.window = 10000;
  s.arrival.key_pattern = KeyPattern::kRandom;
  PhaseSpec load;
  load.tuples = 2000000;
  s.phases = {load};
  s.strategy = "jisc";
  s.parallelism = 4;
  s.telemetry.enabled = true;
  s.telemetry.period_ms = 5;
  s.telemetry.watchdog_samples = 4;
  s.telemetry.expect_straggler_shard = 2;
  s.fault.straggler_shard = 2;
  s.fault.stall_ms = 30;
  s.fault.stall_every = 2000;
  RunOptions opts;
  opts.scale = 0.02;
  auto r = RunScenario(s, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::vector<uint64_t>& flags = r.value().telemetry.straggler_flags;
  ASSERT_GE(flags.size(), 4u);
  EXPECT_GT(flags[3], 0u);  // shard 2 records on track 3
  for (size_t t = 0; t < flags.size(); ++t) {
    if (t != 3) {
      EXPECT_EQ(flags[t], 0u) << "spurious flag on track " << t;
    }
  }
}

TEST(RunnerTest, HealthySymmetricRunRaisesNoStragglers) {
  Spec s = TestSpec();
  s.streams = 4;
  s.parallelism = 2;
  s.telemetry.enabled = true;
  s.telemetry.period_ms = 2;
  s.telemetry.expect_no_stragglers = true;
  auto r = RunScenario(s);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (uint64_t f : r.value().telemetry.straggler_flags) EXPECT_EQ(f, 0u);
}

TEST(RunnerTest, DropEveryThinsTheMeasuredStreamDeterministically) {
  Spec s = TestSpec();
  s.fault.drop_every = 4;
  auto dropped = RunScenario(s);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  // 2000 attempted arrivals at scale 1; every 4th is consumed unpushed.
  EXPECT_EQ(dropped.value().measured_tuples, 2000u);
  EXPECT_EQ(dropped.value().dropped_arrivals, 500u);
  // Repeat runs of the same spec stay byte-identical.
  auto again = RunScenario(s);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(SerializeDeterministic(dropped.value()),
            SerializeDeterministic(again.value()));
  // ...and genuinely differ from the clean run (work counters shrink).
  auto clean = RunScenario(TestSpec());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean.value().dropped_arrivals, 0u);
  EXPECT_NE(SerializeDeterministic(dropped.value()),
            SerializeDeterministic(clean.value()));
}

TEST(RunnerTest, CheckpointRestoreContinuesTheRun) {
  Spec s = TestSpec();
  s.schedule.clear();
  EventSpec t1;
  t1.at = 400;
  t1.transition = TransitionKind::kBestCase;
  EventSpec cp;
  cp.at = 1200;  // several window turnovers after the transition
  cp.action = EventSpec::Action::kCheckpointRestore;
  s.schedule = {t1, cp};
  auto with_cp = RunScenario(s);
  ASSERT_TRUE(with_cp.ok()) << with_cp.status().ToString();
  EXPECT_EQ(with_cp.value().checkpoint_restores, 1u);

  // Restore is behaviour-preserving, so the work-unit counters must match
  // the uninterrupted run of the same scenario.
  s.schedule = {t1};
  auto without = RunScenario(s);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with_cp.value().counters, without.value().counters);
}

TEST(RunnerTest, ScaleHelpers) {
  EXPECT_EQ(ScaleCount(10000, 0.02), 200u);
  EXPECT_EQ(ScaleCount(10, 0.02), 1u);     // never rounds to zero
  EXPECT_EQ(ScaleWindow(10000, 0.02), 200u);
  EXPECT_EQ(ScaleWindow(100, 0.02), 50u);  // window floor
}

// -------------------------------------------------------- Bundle / diff --

TEST(BundleTest, RunResultRoundTripsThroughJson) {
  auto r = RunScenario(TestSpec());
  ASSERT_TRUE(r.ok());
  auto back = RunResultFromJson(RunResultToJson(r.value()));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(SerializeDeterministic(back.value()),
            SerializeDeterministic(r.value()));
  EXPECT_EQ(back.value().thresholds, r.value().thresholds);
}

TEST(BundleTest, IngressShapeFieldsRoundTripAndDefaultToZero) {
  auto r = RunScenario(TestSpec());
  ASSERT_TRUE(r.ok());
  RunResult faulted = r.value();
  faulted.duplicated_arrivals = 400;
  faulted.reordered_arrivals = 1234;
  faulted.duplicates_suppressed = 400;
  faulted.reorder_restored = 1100;
  faulted.late_admitted = 3;
  faulted.late_dropped = 1;
  auto back = RunResultFromJson(RunResultToJson(faulted));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().duplicated_arrivals, 400u);
  EXPECT_EQ(back.value().reordered_arrivals, 1234u);
  EXPECT_EQ(back.value().duplicates_suppressed, 400u);
  EXPECT_EQ(back.value().reorder_restored, 1100u);
  EXPECT_EQ(back.value().late_admitted, 3u);
  EXPECT_EQ(back.value().late_dropped, 1u);
  // A pre-guard bundle (fields absent) parses with all of them zero, so
  // old committed baselines stay comparable.
  auto is_new_field = [](const std::string& key) {
    return key == "duplicated_arrivals" || key == "reordered_arrivals" ||
           key == "duplicates_suppressed" || key == "reorder_restored" ||
           key == "late_admitted" || key == "late_dropped";
  };
  Json full = RunResultToJson(r.value());
  Json old = Json::Object();
  for (const auto& [key, value] : full.members()) {
    if (key != "shape") {
      old.Set(key, value);
      continue;
    }
    Json shape = Json::Object();
    for (const auto& [sk, sv] : value.members()) {
      if (!is_new_field(sk)) shape.Set(sk, sv);
    }
    old.Set("shape", std::move(shape));
  }
  auto parsed = RunResultFromJson(old);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().duplicated_arrivals, 0u);
  EXPECT_EQ(parsed.value().late_dropped, 0u);
}

TEST(CompareTest, IngressCounterDriftIsExactMatched) {
  auto base = RunScenario(TestSpec());
  ASSERT_TRUE(base.ok());
  RunResult drifted = base.value();
  drifted.duplicates_suppressed += 1;
  DiffResult diff = CompareRuns(base.value(), drifted);
  EXPECT_EQ(diff.exit_code(), kExitRegression);
  ASSERT_EQ(diff.failures.size(), 1u);
  EXPECT_EQ(diff.failures[0], "shape.duplicates_suppressed");
}

TEST(BundleTest, RejectsUnknownBundleVersion) {
  auto r = RunScenario(TestSpec());
  ASSERT_TRUE(r.ok());
  Json j = RunResultToJson(r.value());
  j.Set("bundle_version", kBundleVersion + 1);
  EXPECT_FALSE(RunResultFromJson(j).ok());
}

TEST(CompareTest, IdenticalRunsPass) {
  auto a = RunScenario(TestSpec());
  auto b = RunScenario(TestSpec());
  ASSERT_TRUE(a.ok() && b.ok());
  DiffResult diff = CompareRuns(a.value(), b.value());
  EXPECT_TRUE(diff.pass()) << DiffToTable(diff);
  EXPECT_EQ(diff.exit_code(), kExitPass);
}

TEST(CompareTest, InjectedWorkUnitRegressionFails) {
  auto base = RunScenario(TestSpec());
  ASSERT_TRUE(base.ok());
  RunResult regressed = base.value();
  for (auto& [name, value] : regressed.counters) {
    if (name == "work_units") value += value / 10;  // +10%
  }
  DiffResult diff = CompareRuns(base.value(), regressed);
  EXPECT_EQ(diff.exit_code(), kExitRegression);
  ASSERT_EQ(diff.failures.size(), 1u);
  EXPECT_EQ(diff.failures[0], "counters.work_units");
  // The offending metric is named in diff.json.
  std::string json = DiffToJson(diff).Dump();
  EXPECT_NE(json.find("counters.work_units"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"regression\""), std::string::npos);
}

TEST(CompareTest, CounterImprovementAlsoFails) {
  // Exact-match means drift in either direction forces a re-capture.
  auto base = RunScenario(TestSpec());
  ASSERT_TRUE(base.ok());
  RunResult improved = base.value();
  for (auto& [name, value] : improved.counters) {
    if (name == "work_units") value -= value / 10;
  }
  EXPECT_EQ(CompareRuns(base.value(), improved).exit_code(),
            kExitRegression);
}

TEST(CompareTest, IdentityMismatchIsSpecError) {
  auto a = RunScenario(TestSpec());
  ASSERT_TRUE(a.ok());
  RunResult other = a.value();
  other.strategy = "moving-state";
  DiffResult diff = CompareRuns(a.value(), other);
  EXPECT_EQ(diff.exit_code(), kExitSpecError);

  other = a.value();
  other.scale = 0.5;
  EXPECT_EQ(CompareRuns(a.value(), other).exit_code(), kExitSpecError);
}

// The wall-clock tests pin measured_seconds on both sides: the real value
// depends on machine load, and a delta derived from it can straddle a
// threshold or the absolute floor.
TEST(CompareTest, WallClockNoiseBelowFloorPasses) {
  auto a = RunScenario(TestSpec());
  ASSERT_TRUE(a.ok());
  RunResult base = a.value();
  base.measured_seconds = 0.004;
  RunResult b = base;
  b.measured_seconds = 0.04;  // +900% relative, but under the 50ms floor
  DiffResult diff = CompareRuns(base, b);
  EXPECT_TRUE(diff.pass()) << DiffToTable(diff);
}

TEST(CompareTest, SpecThresholdOverridesDefault) {
  auto a = RunScenario(TestSpec());
  ASSERT_TRUE(a.ok());
  RunResult base = a.value();
  base.measured_seconds = 1.0;
  RunResult b = base;
  b.measured_seconds = 3.0;                      // way past the 50% default
  b.thresholds["wall.measured_seconds"] = 5.0;   // ...but allowed
  EXPECT_TRUE(CompareRuns(base, b).pass());
  b.thresholds.erase("wall.measured_seconds");
  EXPECT_FALSE(CompareRuns(base, b).pass());
}

}  // namespace
}  // namespace scenario
}  // namespace jisc
