// Test battery for the lock-free log-linear histogram (obs/histogram.h):
// golden quantiles against exact sorted-sample quantiles within the bucket
// scheme's guaranteed relative error, merge associativity, overflow-bucket
// behavior, and a TSan-gated concurrent record/merge/read test mirroring
// parallel_test.cc's monitoring-thread pattern.

#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/random.h"

namespace jisc {
namespace {

// Exact quantile of a sample: the smallest value whose rank covers q, the
// definition the histogram approximates from above.
uint64_t ExactQuantile(std::vector<uint64_t> sorted, double q) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  double target = q * static_cast<double>(sorted.size());
  size_t rank = static_cast<size_t>(target);
  if (static_cast<double>(rank) < target) ++rank;
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

// The documented guarantee: exact <= approx <= exact + exact/16 (+1 covers
// the unit buckets' closed upper bounds at tiny values).
void ExpectWithinBucketError(uint64_t exact, uint64_t approx) {
  EXPECT_GE(approx, exact);
  EXPECT_LE(approx, exact + exact / Histogram::kSubCount + 1);
}

TEST(HistogramTest, BucketGeometryRoundTrips) {
  // Every bucket's upper bound must map back into that bucket, and bucket
  // boundaries must be monotone — the invariants Quantile() walks on.
  uint64_t prev = 0;
  for (int i = 0; i < Histogram::kBuckets - 1; ++i) {
    uint64_t ub = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(ub), i) << "bucket " << i;
    if (i > 0) EXPECT_GT(ub, prev) << "bucket " << i;
    prev = ub;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1),
            Histogram::kMaxTracked);
  // Spot checks across magnitudes: value and upper bound agree on bucket,
  // and the bound is within 1/16 above the value.
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{15}, uint64_t{16},
                     uint64_t{17}, uint64_t{255}, uint64_t{1023},
                     uint64_t{4096}, uint64_t{123456789},
                     (uint64_t{1} << 39) + 12345}) {
    uint64_t ub = Histogram::BucketUpperBound(Histogram::BucketIndex(v));
    EXPECT_GE(ub, v);
    EXPECT_LE(ub, v + v / Histogram::kSubCount + 1);
  }
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.P99(), 0u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Values below kSubCount occupy unit-width buckets: quantiles are exact.
  Histogram h;
  std::vector<uint64_t> sample;
  for (uint64_t v = 0; v < 16; ++v) {
    for (uint64_t i = 0; i <= v; ++i) {
      h.Record(v);
      sample.push_back(v);
    }
  }
  EXPECT_EQ(h.count(), sample.size());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), ExactQuantile(sample, q)) << "q=" << q;
  }
  EXPECT_EQ(h.max(), 15u);
}

TEST(HistogramTest, GoldenQuantilesUniform) {
  // Uniform sample over several decades; histogram quantiles must track the
  // exact sorted-sample quantiles within the documented bucket error.
  Histogram h;
  std::vector<uint64_t> sample;
  Rng rng(42);
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = rng.UniformU64(1000000) + 1;
    h.Record(v);
    sample.push_back(v);
  }
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}) {
    ExpectWithinBucketError(ExactQuantile(sample, q), h.Quantile(q));
  }
}

TEST(HistogramTest, GoldenQuantilesHeavyTail) {
  // Exponentially spread magnitudes (the shape of latency tails): the
  // relative error bound must hold independently of magnitude.
  Histogram h;
  std::vector<uint64_t> sample;
  Rng rng(7);
  for (int i = 0; i < 50000; ++i) {
    int shift = static_cast<int>(rng.UniformU64(30));
    uint64_t v = (uint64_t{1} << shift) + rng.UniformU64(1u << shift);
    h.Record(v);
    sample.push_back(v);
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    ExpectWithinBucketError(ExactQuantile(sample, q), h.Quantile(q));
  }
  EXPECT_EQ(h.count(), sample.size());
  uint64_t expected_sum = 0;
  for (uint64_t v : sample) expected_sum += v;
  EXPECT_EQ(h.sum(), expected_sum);
  EXPECT_EQ(h.max(), *std::max_element(sample.begin(), sample.end()));
}

TEST(HistogramTest, QuantileEdgeValues) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(300);
  // q <= 0 clamps to the first recorded value's bucket, q >= 1 to the last.
  ExpectWithinBucketError(100, h.Quantile(0.0));
  ExpectWithinBucketError(100, h.Quantile(-1.0));
  ExpectWithinBucketError(300, h.Quantile(1.0));
  ExpectWithinBucketError(300, h.Quantile(2.0));
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  // Merging two histograms must equal recording both streams into one.
  Histogram a, b, combined;
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.UniformU64(1u << 20) + 1;
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.max(), combined.max());
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    ASSERT_EQ(a.bucket_count(i), combined.bucket_count(i)) << "bucket " << i;
  }
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Quantile(q), combined.Quantile(q));
  }
}

TEST(HistogramTest, MergeIsAssociative) {
  // (a + b) + c == a + (b + c), cell for cell — the property that makes
  // shard-order-independent aggregation sound.
  Histogram a, b, c;
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    a.Record(rng.UniformU64(1u << 24) + 1);
    b.Record(rng.UniformU64(1u << 12) + 1);
    c.Record(rng.UniformU64(1u << 30) + 1);
  }
  Histogram left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  Histogram bc = b;     // a + (b + c)
  bc.Merge(c);
  Histogram right = a;
  right.Merge(bc);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.max(), right.max());
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    ASSERT_EQ(left.bucket_count(i), right.bucket_count(i)) << "bucket " << i;
  }
}

TEST(HistogramTest, OverflowBucketBehavior) {
  Histogram h;
  h.Record(100);
  h.Record(Histogram::kMaxTracked);          // first untracked value
  h.Record(Histogram::kMaxTracked * 2);
  h.Record(~uint64_t{0});                    // UINT64_MAX
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.overflow(), 3u);
  EXPECT_EQ(h.max(), ~uint64_t{0});
  // Quantiles that land in the overflow bucket saturate at kMaxTracked
  // (the histogram cannot resolve beyond it) rather than fabricating a
  // value; max() keeps the true maximum.
  EXPECT_EQ(h.Quantile(0.99), Histogram::kMaxTracked);
  ExpectWithinBucketError(100, h.Quantile(0.25));
}

TEST(HistogramTest, CopyIsSnapshot) {
  Histogram h;
  h.Record(10);
  h.Record(1000);
  Histogram snap = h;
  h.Record(100000);
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(snap.max(), 1000u);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h;
  for (uint64_t v = 1; v < 1000; ++v) h.Record(v * 37);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    ASSERT_EQ(h.bucket_count(i), 0u);
  }
}

TEST(HistogramTest, ConcurrentRecordAndSnapshot) {
  // Mirrors parallel_test.cc's monitoring-thread pattern: writers hammer a
  // shared histogram while a monitor snapshots quantiles and checks count
  // monotonicity. TSan gates this (histogram_test runs under
  // JISC_SANITIZE=thread in CI).
  Histogram h;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  std::atomic<bool> done{false};
  uint64_t last_count = 0;
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      Histogram snap = h;  // copy = per-cell atomic snapshot
      uint64_t n = snap.count();
      EXPECT_GE(n, last_count);  // cells are monotone under recording
      last_count = n;
      if (n > 0) EXPECT_GT(snap.Quantile(0.5), 0u);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h, w] {
      Rng rng(static_cast<uint64_t>(w) + 1);
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        h.Record(rng.UniformU64(1u << 22) + 1);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(h.count(), kWriters * kPerWriter);
}

TEST(HistogramTest, ConcurrentMergeIntoShared) {
  // Per-shard histograms merged concurrently into one aggregate — the
  // post-run aggregation path. Merge is cell-wise atomic adds, so
  // concurrent merges must lose nothing.
  constexpr int kShards = 4;
  std::vector<Histogram> shard(kShards);
  for (int s = 0; s < kShards; ++s) {
    Rng rng(static_cast<uint64_t>(s) + 100);
    for (int i = 0; i < 10000; ++i) shard[s].Record(rng.UniformU64(1u << 16) + 1);
  }
  Histogram agg;
  std::vector<std::thread> mergers;
  for (int s = 0; s < kShards; ++s) {
    mergers.emplace_back([&agg, &shard, s] { agg.Merge(shard[s]); });
  }
  for (auto& t : mergers) t.join();
  uint64_t expected = 0;
  for (const Histogram& sh : shard) expected += sh.count();
  EXPECT_EQ(agg.count(), expected);
}

TEST(HistogramTest, ToStringMentionsQuantiles) {
  Histogram h;
  for (uint64_t i = 1; i <= 100; ++i) h.Record(i * 1000);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=100"), std::string::npos) << s;
  EXPECT_NE(s.find("p50="), std::string::npos) << s;
  EXPECT_NE(s.find("p99="), std::string::npos) << s;
}

}  // namespace
}  // namespace jisc
