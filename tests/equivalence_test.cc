// Property suite for the correctness theorems of the paper's appendix:
// for any workload and any transition schedule, every migration strategy
// must produce exactly the output of a never-migrated reference
// (Completeness + Closedness + Duplicate-freedom).

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "migration/moving_state.h"
#include "migration/hybrid_track.h"
#include "migration/parallel_track.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::DriveAndCompare;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

enum class StrategyKind {
  kJiscOnProbe,
  kJiscOnFirstReceipt,
  kJiscTurnoverDetection,
  kJiscRecursiveOnly,
  kMovingState,
  kParallelTrack,
  kHybridTrack,
};

const char* StrategyName(StrategyKind k) {
  switch (k) {
    case StrategyKind::kJiscOnProbe:
      return "JiscOnProbe";
    case StrategyKind::kJiscOnFirstReceipt:
      return "JiscOnFirstReceipt";
    case StrategyKind::kJiscTurnoverDetection:
      return "JiscTurnoverDetection";
    case StrategyKind::kJiscRecursiveOnly:
      return "JiscRecursiveOnly";
    case StrategyKind::kMovingState:
      return "MovingState";
    case StrategyKind::kParallelTrack:
      return "ParallelTrack";
    case StrategyKind::kHybridTrack:
      return "HybridTrack";
  }
  return "?";
}

std::unique_ptr<StreamProcessor> MakeProcessor(StrategyKind kind,
                                               const LogicalPlan& plan,
                                               const WindowSpec& windows,
                                               Sink* sink, ThetaSpec theta) {
  Engine::Options eopts;
  eopts.exec.theta = theta;
  eopts.maintain_period = 32;  // exercise detection often in tests
  switch (kind) {
    case StrategyKind::kJiscOnProbe:
      return std::make_unique<Engine>(plan, windows, sink, MakeJiscStrategy(),
                                      eopts);
    case StrategyKind::kJiscOnFirstReceipt: {
      JiscOptions j;
      j.completion_mode = JiscOptions::CompletionMode::kOnFirstReceipt;
      return std::make_unique<Engine>(plan, windows, sink,
                                      MakeJiscStrategy(j), eopts);
    }
    case StrategyKind::kJiscTurnoverDetection: {
      JiscOptions j;
      j.detection = JiscOptions::DetectionMode::kWindowTurnoverOnly;
      return std::make_unique<Engine>(plan, windows, sink,
                                      MakeJiscStrategy(j), eopts);
    }
    case StrategyKind::kJiscRecursiveOnly: {
      JiscOptions j;
      j.use_left_deep_procedure = false;
      return std::make_unique<Engine>(plan, windows, sink,
                                      MakeJiscStrategy(j), eopts);
    }
    case StrategyKind::kMovingState:
      return std::make_unique<Engine>(plan, windows, sink,
                                      MakeMovingStateStrategy(), eopts);
    case StrategyKind::kParallelTrack: {
      ParallelTrackProcessor::Options popts;
      popts.exec.theta = theta;
      popts.purge_check_period = 64;
      return std::make_unique<ParallelTrackProcessor>(plan, windows, sink,
                                                      popts);
    }
    case StrategyKind::kHybridTrack: {
      HybridTrackProcessor::Options hopts;
      hopts.exec.theta = theta;
      hopts.purge_check_period = 64;
      return std::make_unique<HybridTrackProcessor>(plan, windows, sink,
                                                    hopts);
    }
  }
  return nullptr;
}

struct Scenario {
  StrategyKind strategy;
  int num_streams;
  uint64_t window;
  uint64_t domain;
  size_t tuples;
  bool bushy;
  int64_t theta_band;  // 0 => hash joins; > 0 => NLJ band joins
};

class EquivalenceTest : public ::testing::TestWithParam<Scenario> {};

// A single forced best-case transition mid-run.
TEST_P(EquivalenceTest, BestCaseTransition) {
  const Scenario& sc = GetParam();
  ThetaSpec theta{sc.theta_band};
  OpKind kind = sc.theta_band > 0 ? OpKind::kNljJoin : OpKind::kHashJoin;
  auto order = IdentityOrder(sc.num_streams);
  LogicalPlan plan = sc.bushy ? LogicalPlan::BalancedBushy(order, kind)
                              : LogicalPlan::LeftDeep(order, kind);
  LogicalPlan next = LogicalPlan::LeftDeep(BestCaseOrder(order), kind);
  WindowSpec windows = WindowSpec::Uniform(sc.num_streams, sc.window);
  CollectingSink sink;
  auto proc = MakeProcessor(sc.strategy, plan, windows, &sink, theta);
  auto tuples = UniformWorkload(sc.num_streams, sc.domain, sc.tuples);
  std::map<size_t, LogicalPlan> schedule{{sc.tuples / 2, next}};
  auto r = DriveAndCompare(proc.get(), &sink, sc.num_streams, windows, tuples,
                           schedule, theta);
  EXPECT_TRUE(r.outputs_match)
      << StrategyName(sc.strategy) << ": " << r.outputs << " outputs vs "
      << r.reference_outputs << " reference";
  EXPECT_TRUE(r.retractions_match) << StrategyName(sc.strategy);
}

// A single worst-case (reversal) transition mid-run.
TEST_P(EquivalenceTest, WorstCaseTransition) {
  const Scenario& sc = GetParam();
  ThetaSpec theta{sc.theta_band};
  OpKind kind = sc.theta_band > 0 ? OpKind::kNljJoin : OpKind::kHashJoin;
  auto order = IdentityOrder(sc.num_streams);
  LogicalPlan plan = sc.bushy ? LogicalPlan::BalancedBushy(order, kind)
                              : LogicalPlan::LeftDeep(order, kind);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order), kind);
  WindowSpec windows = WindowSpec::Uniform(sc.num_streams, sc.window);
  CollectingSink sink;
  auto proc = MakeProcessor(sc.strategy, plan, windows, &sink, theta);
  auto tuples = UniformWorkload(sc.num_streams, sc.domain, sc.tuples);
  std::map<size_t, LogicalPlan> schedule{{sc.tuples / 2, next}};
  auto r = DriveAndCompare(proc.get(), &sink, sc.num_streams, windows, tuples,
                           schedule, theta);
  EXPECT_TRUE(r.outputs_match)
      << StrategyName(sc.strategy) << ": " << r.outputs << " outputs vs "
      << r.reference_outputs << " reference";
  EXPECT_TRUE(r.retractions_match) << StrategyName(sc.strategy);
}

// Overlapped random transitions (Section 4.5): several transitions in quick
// succession, before earlier ones' states complete.
TEST_P(EquivalenceTest, OverlappedRandomTransitions) {
  const Scenario& sc = GetParam();
  ThetaSpec theta{sc.theta_band};
  OpKind kind = sc.theta_band > 0 ? OpKind::kNljJoin : OpKind::kHashJoin;
  auto order = IdentityOrder(sc.num_streams);
  LogicalPlan plan = sc.bushy ? LogicalPlan::BalancedBushy(order, kind)
                              : LogicalPlan::LeftDeep(order, kind);
  WindowSpec windows = WindowSpec::Uniform(sc.num_streams, sc.window);
  CollectingSink sink;
  auto proc = MakeProcessor(sc.strategy, plan, windows, &sink, theta);
  auto tuples = UniformWorkload(sc.num_streams, sc.domain, sc.tuples);
  Rng rng(0xfeed + static_cast<uint64_t>(sc.strategy));
  std::map<size_t, LogicalPlan> schedule;
  auto cur = order;
  // Transitions every tuples/8 events: well inside window turnover, so
  // earlier incomplete states are still incomplete.
  for (size_t at = sc.tuples / 8; at < sc.tuples; at += sc.tuples / 8) {
    cur = RandomTriangularSwap(cur, &rng);
    schedule.emplace(at, LogicalPlan::LeftDeep(cur, kind));
  }
  auto r = DriveAndCompare(proc.get(), &sink, sc.num_streams, windows, tuples,
                           schedule, theta);
  EXPECT_TRUE(r.outputs_match)
      << StrategyName(sc.strategy) << ": " << r.outputs << " outputs vs "
      << r.reference_outputs << " reference";
  EXPECT_TRUE(r.retractions_match) << StrategyName(sc.strategy);
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> out;
  for (StrategyKind k :
       {StrategyKind::kJiscOnProbe, StrategyKind::kJiscOnFirstReceipt,
        StrategyKind::kJiscTurnoverDetection,
        StrategyKind::kJiscRecursiveOnly, StrategyKind::kMovingState,
        StrategyKind::kParallelTrack, StrategyKind::kHybridTrack}) {
    // Hash joins, left-deep, 3 and 5 streams.
    out.push_back({k, 3, 8, 4, 400, false, 0});
    out.push_back({k, 5, 6, 3, 500, false, 0});
    // Wider plan, tiny windows (heavy expiry churn).
    out.push_back({k, 6, 3, 2, 500, false, 0});
    // Bushy initial plan.
    out.push_back({k, 4, 6, 3, 400, true, 0});
    // Larger window, sparse keys (many never-matching values).
    out.push_back({k, 4, 12, 24, 400, false, 0});
    // Theta band joins (small: quadratic reference).
    out.push_back({k, 3, 5, 6, 200, false, 1});
  }
  return out;
}

std::string ScenarioLabel(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  std::string name = StrategyName(s.strategy);
  name += "_n" + std::to_string(s.num_streams);
  name += "_w" + std::to_string(s.window);
  name += s.bushy ? "_bushy" : "_leftdeep";
  if (s.theta_band > 0) name += "_band";
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, EquivalenceTest,
                         ::testing::ValuesIn(AllScenarios()), ScenarioLabel);

}  // namespace
}  // namespace jisc
