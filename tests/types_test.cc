#include <gtest/gtest.h>

#include "types/schema.h"
#include "types/tuple.h"

namespace jisc {
namespace {

BaseTuple MakeBase(StreamId s, JoinKey k, Seq seq) {
  BaseTuple b;
  b.stream = s;
  b.key = k;
  b.seq = seq;
  return b;
}

TEST(StreamSetTest, SingleAndUnion) {
  StreamSet a = StreamSet::Single(0);
  StreamSet b = StreamSet::Single(3);
  StreamSet u = StreamSet::Union(a, b);
  EXPECT_TRUE(u.Contains(0));
  EXPECT_TRUE(u.Contains(3));
  EXPECT_FALSE(u.Contains(1));
  EXPECT_EQ(u.size(), 2);
  EXPECT_TRUE(u.ContainsAll(a));
  EXPECT_TRUE(u.Intersects(b));
  EXPECT_FALSE(a.Intersects(b));
}

TEST(StreamSetTest, EmptyAndEquality) {
  StreamSet e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.size(), 0);
  EXPECT_TRUE(StreamSet::Single(5) == StreamSet::Single(5));
  EXPECT_FALSE(StreamSet::Single(5) == StreamSet::Single(6));
}

TEST(StreamSetTest, ToVectorAscending) {
  StreamSet s = StreamSet::Union(StreamSet::Single(7),
                                 StreamSet::Union(StreamSet::Single(2),
                                                  StreamSet::Single(63)));
  std::vector<StreamId> v = s.ToVector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 2);
  EXPECT_EQ(v[1], 7);
  EXPECT_EQ(v[2], 63);
  EXPECT_EQ(s.ToString(), "{S2,S7,S63}");
}

TEST(TupleTest, FromBase) {
  Tuple t = Tuple::FromBase(MakeBase(2, 10, 99), /*birth=*/5, /*fresh=*/true);
  EXPECT_EQ(t.parts().size(), 1u);
  EXPECT_EQ(t.key(), 10);
  EXPECT_EQ(t.birth(), 5u);
  EXPECT_TRUE(t.fresh());
  EXPECT_TRUE(t.streams().Contains(2));
  EXPECT_TRUE(t.ContainsSeq(99));
  EXPECT_FALSE(t.ContainsSeq(98));
}

TEST(TupleTest, ConcatKeepsPartsSortedByStream) {
  Tuple a = Tuple::FromBase(MakeBase(3, 7, 1), 1, true);
  Tuple b = Tuple::FromBase(MakeBase(1, 7, 2), 1, true);
  Tuple c = Tuple::Concat(a, b, 2, false);
  ASSERT_EQ(c.parts().size(), 2u);
  EXPECT_EQ(c.parts()[0].stream, 1);
  EXPECT_EQ(c.parts()[1].stream, 3);
  EXPECT_EQ(c.birth(), 2u);
  EXPECT_FALSE(c.fresh());
  EXPECT_EQ(c.streams().size(), 2);
}

TEST(TupleTest, IdentityIndependentOfJoinOrder) {
  Tuple a = Tuple::FromBase(MakeBase(0, 7, 10), 1, true);
  Tuple b = Tuple::FromBase(MakeBase(1, 7, 11), 1, true);
  Tuple c = Tuple::FromBase(MakeBase(2, 7, 12), 1, true);
  Tuple ab_c = Tuple::Concat(Tuple::Concat(a, b, 1, true), c, 1, true);
  Tuple a_cb = Tuple::Concat(a, Tuple::Concat(c, b, 1, true), 1, true);
  EXPECT_TRUE(ab_c == a_cb);
  EXPECT_EQ(ab_c.IdentityHash(), a_cb.IdentityHash());
}

TEST(TupleTest, DifferentPartsDiffer) {
  Tuple a = Tuple::FromBase(MakeBase(0, 7, 10), 1, true);
  Tuple b = Tuple::FromBase(MakeBase(0, 7, 11), 1, true);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.IdentityHash(), b.IdentityHash());
}

TEST(TupleTest, ToStringMentionsParts) {
  Tuple a = Tuple::FromBase(MakeBase(0, 7, 10), 1, true);
  EXPECT_NE(a.ToString().find("S0#10"), std::string::npos);
}

TEST(SchemaTest, SyntheticNamesAndRender) {
  Schema s = Schema::Synthetic(3);
  EXPECT_EQ(s.num_streams(), 3);
  EXPECT_EQ(s.stream_name(1), "S1");
  StreamSet set = StreamSet::Union(StreamSet::Single(0), StreamSet::Single(2));
  EXPECT_EQ(s.Render(set), "{S0,S2}");
}

TEST(SchemaTest, CustomNames) {
  Schema s;
  ASSERT_TRUE(s.AddStream("R").ok());
  ASSERT_TRUE(s.AddStream("T").ok());
  EXPECT_EQ(s.Render(StreamSet::Union(StreamSet::Single(0),
                                      StreamSet::Single(1))),
            "{R,T}");
}

TEST(SchemaTest, RejectsTooManyStreams) {
  Schema s;
  for (int i = 0; i < kMaxStreams; ++i) {
    ASSERT_TRUE(s.AddStream("x").ok());
  }
  EXPECT_FALSE(s.AddStream("overflow").ok());
}

}  // namespace
}  // namespace jisc
