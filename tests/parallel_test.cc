// Concurrency suite for the hash-partitioned parallel execution engine:
// (1) the sharded engine must emit exactly the single-threaded engine's
// output multiset across random plans, window modes and mid-run JISC
// migrations (the single-threaded path is the equivalence oracle);
// (2) the queue primitives must survive multi-producer hammering with
// blocking backpressure and lose nothing across a close/drain.
// This file is the repo's ThreadSanitizer gate: CI runs it under
// JISC_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/random.h"
#include "common/spsc_queue.h"
#include "core/jisc_runtime.h"
#include "core/parallel_engine.h"
#include "exec/parallel_executor.h"
#include "migration/moving_state.h"
#include "plan/transitions.h"
#include "tests/test_util.h"
#include "workload/factory.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

// --- queue primitives ------------------------------------------------------

TEST(BoundedQueueTest, MultiProducerStress) {
  // Tiny capacity so producers constantly hit backpressure.
  BoundedQueue<uint64_t> q(16);
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(static_cast<uint64_t>(p) * kPerProducer + i));
      }
    });
  }
  uint64_t sum = 0;
  uint64_t count = 0;
  std::thread consumer([&] {
    uint64_t v;
    while (count < kProducers * kPerProducer && q.Pop(&v)) {
      sum += v;
      ++count;
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  constexpr uint64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(count, kTotal);
  EXPECT_EQ(sum, kTotal * (kTotal - 1) / 2);  // values are 0..kTotal-1
}

TEST(BoundedQueueTest, CloseDrainsBufferedItems) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  q.Close();
  EXPECT_FALSE(q.Push(99));  // rejected after close
  int v;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.Pop(&v));  // closed and drained
}

TEST(BoundedQueueTest, PopUnblocksOnClose) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] {
    int v;
    EXPECT_FALSE(q.Pop(&v));
  });
  q.Close();
  consumer.join();
}

// Regression guards for the notify-while-holding-the-lock self-deadlock
// shape fixed in SpscQueue in PR 1. Audit result: BoundedQueue never had
// it — every notify is issued after the lock is dropped, and the notify
// path cannot re-enter mu_ — but these tests pin the property: a parked
// waiter must be woken by the opposite operation within a tight deadline.
// On regression the queue is closed so the test fails fast instead of
// hanging the whole ctest run on join().

TEST(BoundedQueueTest, ParkedConsumerWokenByPush) {
  BoundedQueue<int> q(4);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    int v = 0;
    if (q.Pop(&v)) {
      EXPECT_EQ(v, 42);
      woke.store(true, std::memory_order_release);
    }
  });
  // Give the consumer time to park on the empty queue, so the Push below
  // exercises the wake-a-parked-waiter path rather than a fast-path pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(q.Push(42));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!woke.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(woke.load(std::memory_order_acquire))
      << "parked consumer not woken by Push within the deadline";
  if (!woke.load(std::memory_order_acquire)) q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, ParkedProducerWokenByPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));  // fill to capacity
  std::atomic<bool> woke{false};
  std::thread producer([&] {
    if (q.Push(2)) woke.store(true, std::memory_order_release);
  });
  // Give the producer time to park on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int v = 0;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!woke.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(woke.load(std::memory_order_acquire))
      << "parked producer not woken by Pop within the deadline";
  if (!woke.load(std::memory_order_acquire)) q.Close();
  producer.join();
  // The unblocked push must have landed.
  ASSERT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 2);
}

TEST(SpscQueueTest, OrderedTransferUnderBackpressure) {
  SpscQueue<uint64_t> q(64);
  constexpr uint64_t kItems = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(i));
    q.Close();
  });
  uint64_t expected = 0;
  uint64_t v;
  while (q.Pop(&v)) {
    ASSERT_EQ(v, expected);  // SPSC preserves order exactly
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(SpscQueueTest, TryOpsRespectCapacity) {
  SpscQueue<int> q(4);  // rounds to 4
  int v = 0;
  size_t pushed = 0;
  for (int i = 0; i < 64; ++i) {
    v = i;
    if (q.TryPush(v)) ++pushed;
  }
  EXPECT_EQ(pushed, q.capacity());
  int out;
  size_t popped = 0;
  while (q.TryPop(&out)) ++popped;
  EXPECT_EQ(popped, pushed);
  EXPECT_FALSE(q.TryPop(&out));
}

// --- sharded engine equivalence -------------------------------------------

enum class ShardStrategy { kJisc, kMovingState };

std::unique_ptr<StreamProcessor> MakeSharded(ShardStrategy strategy,
                                             const LogicalPlan& plan,
                                             const WindowSpec& windows,
                                             Sink* sink, int parallelism) {
  Engine::Options eopts;
  eopts.maintain_period = 32;  // exercise completion detection often
  eopts.parallelism = parallelism;
  ParallelExecutor::Options popts;
  popts.queue_capacity = 8;  // small queues: hit backpressure in tests
  popts.batch_size = 4;
  StrategyFactory factory;
  if (strategy == ShardStrategy::kJisc) {
    factory = [] { return MakeJiscStrategy(); };
  } else {
    factory = [] { return MakeMovingStateStrategy(); };
  }
  return MakeEngineProcessor(plan, windows, sink, factory, eopts, popts);
}

// Runs the identical workload + transition schedule through the
// single-threaded oracle and the sharded engine, and compares output and
// retraction multisets.
void ExpectShardedMatchesOracle(ShardStrategy strategy,
                                const LogicalPlan& plan,
                                const WindowSpec& windows,
                                const std::vector<BaseTuple>& tuples,
                                const std::map<size_t, LogicalPlan>& schedule,
                                int parallelism) {
  CollectingSink oracle_sink;
  auto oracle = MakeSharded(strategy, plan, windows, &oracle_sink, 1);
  CollectingSink sharded_sink;
  auto sharded =
      MakeSharded(strategy, plan, windows, &sharded_sink, parallelism);
  for (size_t i = 0; i < tuples.size(); ++i) {
    auto it = schedule.find(i);
    if (it != schedule.end()) {
      ASSERT_TRUE(oracle->RequestTransition(it->second).ok());
      ASSERT_TRUE(sharded->RequestTransition(it->second).ok());
    }
    oracle->Push(tuples[i]);
    sharded->Push(tuples[i]);
  }
  // parallelism 1 routes to a plain (synchronous) Engine; otherwise quiesce
  // the shards so the collected outputs are complete.
  auto* parallel = dynamic_cast<ParallelExecutor*>(sharded.get());
  if (parallelism > 1) {
    ASSERT_NE(parallel, nullptr);
    parallel->Barrier();
  } else {
    ASSERT_EQ(parallel, nullptr);
  }
  EXPECT_EQ(IdentityMultiset(sharded_sink.outputs()),
            IdentityMultiset(oracle_sink.outputs()))
      << "outputs diverge at parallelism " << parallelism;
  EXPECT_EQ(IdentityMultiset(sharded_sink.retractions()),
            IdentityMultiset(oracle_sink.retractions()))
      << "retractions diverge at parallelism " << parallelism;
  EXPECT_GT(sharded_sink.outputs().size(), 0u)
      << "vacuous equivalence: workload produced no outputs";
}

TEST(ParallelEquivalenceTest, LeftDeepWithJiscMigration) {
  int streams = 4;
  uint64_t window = 40;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  LogicalPlan reversed = LogicalPlan::LeftDeep(
      WorstCaseOrder(IdentityOrder(streams)), OpKind::kHashJoin);
  auto tuples = UniformWorkload(streams, window, 1200, /*seed=*/11);
  std::map<size_t, LogicalPlan> schedule{{500, reversed}, {900, plan}};
  for (int shards : {1, 2, 4}) {
    ExpectShardedMatchesOracle(ShardStrategy::kJisc, plan,
                               WindowSpec::Uniform(streams, window), tuples,
                               schedule, shards);
  }
}

TEST(ParallelEquivalenceTest, BushyWithJiscMigration) {
  int streams = 5;
  uint64_t window = 30;
  LogicalPlan plan =
      LogicalPlan::BalancedBushy(IdentityOrder(streams), OpKind::kHashJoin);
  LogicalPlan left_deep =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  auto tuples = UniformWorkload(streams, window, 1000, /*seed=*/23);
  std::map<size_t, LogicalPlan> schedule{{400, left_deep}};
  ExpectShardedMatchesOracle(ShardStrategy::kJisc, plan,
                             WindowSpec::Uniform(streams, window), tuples,
                             schedule, 3);
}

TEST(ParallelEquivalenceTest, MovingStateStrategy) {
  int streams = 4;
  uint64_t window = 35;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  LogicalPlan swapped = LogicalPlan::LeftDeep(
      SwapPositions(IdentityOrder(streams), 1, 3), OpKind::kHashJoin);
  auto tuples = UniformWorkload(streams, window, 900, /*seed=*/31);
  std::map<size_t, LogicalPlan> schedule{{450, swapped}};
  ExpectShardedMatchesOracle(ShardStrategy::kMovingState, plan,
                             WindowSpec::Uniform(streams, window), tuples,
                             schedule, 4);
}

TEST(ParallelEquivalenceTest, TimeBasedWindows) {
  int streams = 3;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  LogicalPlan swapped = LogicalPlan::LeftDeep(
      SwapPositions(IdentityOrder(streams), 0, 2), OpKind::kHashJoin);
  SourceConfig cfg;
  cfg.num_streams = streams;
  cfg.key_domain = 25;
  cfg.seed = 47;
  cfg.ts_stride = 1;  // event time advances every arrival
  SyntheticSource src(cfg);
  auto tuples = src.NextBatch(900);
  std::map<size_t, LogicalPlan> schedule{{400, swapped}};
  ExpectShardedMatchesOracle(ShardStrategy::kJisc, plan,
                             WindowSpec::UniformTime(streams, 90), tuples,
                             schedule, 3);
}

TEST(ParallelEquivalenceTest, RandomPlansAndSchedules) {
  Rng rng(0xfeedULL);
  for (int round = 0; round < 6; ++round) {
    int streams = 3 + static_cast<int>(rng.UniformU64(3));  // 3..5
    uint64_t window = 20 + rng.UniformU64(40);
    std::vector<StreamId> order = IdentityOrder(streams);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.UniformU64(i)]);
    }
    bool bushy = streams >= 4 && rng.Bernoulli(0.5);
    LogicalPlan plan = bushy
        ? LogicalPlan::BalancedBushy(order, OpKind::kHashJoin)
        : LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
    std::vector<StreamId> order2 = order;
    for (size_t i = order2.size(); i > 1; --i) {
      std::swap(order2[i - 1], order2[rng.UniformU64(i)]);
    }
    LogicalPlan next = LogicalPlan::LeftDeep(order2, OpKind::kHashJoin);
    size_t total = 600 + rng.UniformU64(400);
    auto tuples = UniformWorkload(streams, window, total, rng.Next());
    std::map<size_t, LogicalPlan> schedule{{total / 2, next}};
    int shards = 2 + static_cast<int>(rng.UniformU64(3));  // 2..4
    SCOPED_TRACE("round " + std::to_string(round) + " plan " +
                 plan.ToString() + " shards " + std::to_string(shards));
    ExpectShardedMatchesOracle(ShardStrategy::kJisc, plan,
                               WindowSpec::Uniform(streams, window), tuples,
                               schedule, shards);
  }
}

// --- sharded engine behavior ----------------------------------------------

TEST(ParallelExecutorTest, RejectsThetaPlans) {
  std::vector<StreamId> order = IdentityOrder(3);
  LogicalPlan theta = LogicalPlan::LeftDeep(order, OpKind::kNljJoin);
  EXPECT_FALSE(ParallelExecutor::ValidateShardable(theta).ok());
  LogicalPlan hash = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  EXPECT_TRUE(ParallelExecutor::ValidateShardable(hash).ok());

  // A running sharded engine refuses to migrate to a theta plan.
  CountingSink sink;
  auto proc = MakeSharded(ShardStrategy::kJisc, hash,
                          WindowSpec::Uniform(3, 20), &sink, 2);
  EXPECT_FALSE(proc->RequestTransition(theta).ok());
}

TEST(ParallelExecutorTest, MetricsAggregateAcrossShards) {
  int streams = 3;
  uint64_t window = 30;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  CountingSink sink;
  auto proc = MakeSharded(ShardStrategy::kJisc, plan,
                          WindowSpec::Uniform(streams, window), &sink, 4);
  auto tuples = UniformWorkload(streams, window, 600, /*seed=*/5);
  for (const BaseTuple& t : tuples) proc->Push(t);
  const Metrics& m = proc->metrics();  // quiesces all shards
  EXPECT_EQ(m.arrivals, tuples.size());
  EXPECT_EQ(m.outputs, sink.outputs());
  EXPECT_GT(m.probes, 0u);
  EXPECT_GT(proc->StateMemory(), 0u);
}

TEST(ParallelExecutorTest, JiscCompletionRunsPerShard) {
  int streams = 4;
  uint64_t window = 50;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  LogicalPlan reversed = LogicalPlan::LeftDeep(
      WorstCaseOrder(IdentityOrder(streams)), OpKind::kHashJoin);
  CountingSink sink;
  auto proc = MakeSharded(ShardStrategy::kJisc, plan,
                          WindowSpec::Uniform(streams, window), &sink, 4);
  auto tuples = UniformWorkload(streams, window, 2000, /*seed=*/77);
  size_t half = tuples.size() / 2;
  for (size_t i = 0; i < half; ++i) proc->Push(tuples[i]);
  ASSERT_TRUE(proc->RequestTransition(reversed).ok());
  for (size_t i = half; i < tuples.size(); ++i) proc->Push(tuples[i]);
  // The worst-case reorder leaves every intermediate state incomplete;
  // post-transition traffic must trigger per-shard lazy completion.
  EXPECT_GT(proc->metrics().completions, 0u);
}

TEST(ParallelExecutorTest, MetricsApproxIsSafeFromMonitoringThread) {
  // metrics()/StateMemory() are coordinator-only (they quiesce the shards);
  // MetricsApprox() is the one observation entry point another thread may
  // hit while the coordinator keeps pushing. TSan gates this.
  int streams = 3;
  uint64_t window = 30;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  CountingSink sink;
  auto proc = MakeSharded(ShardStrategy::kJisc, plan,
                          WindowSpec::Uniform(streams, window), &sink, 4);
  auto* parallel = dynamic_cast<ParallelExecutor*>(proc.get());
  ASSERT_NE(parallel, nullptr);
  std::atomic<bool> done{false};
  uint64_t last_seen = 0;
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      Metrics snap = parallel->MetricsApprox();
      uint64_t arrivals = snap.arrivals;
      EXPECT_GE(arrivals, last_seen);  // counters are monotone
      last_seen = arrivals;
      std::this_thread::yield();
    }
  });
  auto tuples = UniformWorkload(streams, window, 3000, /*seed=*/61);
  for (const BaseTuple& t : tuples) proc->Push(t);
  parallel->Barrier();
  done.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(parallel->MetricsApprox().arrivals, tuples.size());
  EXPECT_EQ(proc->metrics().arrivals, tuples.size());
}

TEST(ParallelExecutorTest, MetricsApproxTotalsAreMonotone) {
  // Regression for the Metrics snapshot-consistency contract (metrics.h):
  // each counter in a MetricsApprox() snapshot is an atomic (never torn)
  // read, and every counter only grows under execution — so successive
  // snapshots must be monotone per counter AND in the WorkUnits() total,
  // even though the snapshot is not cross-counter consistent. A torn or
  // reordered read would show up as a dip here under TSan/stress.
  int streams = 3;
  uint64_t window = 30;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  CountingSink sink;
  auto proc = MakeSharded(ShardStrategy::kJisc, plan,
                          WindowSpec::Uniform(streams, window), &sink, 4);
  auto* parallel = dynamic_cast<ParallelExecutor*>(proc.get());
  ASSERT_NE(parallel, nullptr);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> snapshots_taken{0};
  std::thread monitor([&] {
    Metrics prev;  // zero-initialized: any first snapshot is >= it
    uint64_t prev_work = 0;
    while (!done.load(std::memory_order_acquire)) {
      Metrics snap = parallel->MetricsApprox();
      EXPECT_GE(snap.arrivals, prev.arrivals);
      EXPECT_GE(snap.probes, prev.probes);
      EXPECT_GE(snap.inserts, prev.inserts);
      EXPECT_GE(snap.outputs, prev.outputs);
      EXPECT_GE(snap.completions, prev.completions);
      EXPECT_GE(snap.removals, prev.removals);
      uint64_t work = snap.WorkUnits();
      EXPECT_GE(work, prev_work);
      prev = snap;
      prev_work = work;
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  auto tuples = UniformWorkload(streams, window, 3000, /*seed=*/29);
  for (const BaseTuple& t : tuples) proc->Push(t);
  parallel->Barrier();
  done.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_GT(snapshots_taken.load(), 0u);
  // After quiescing, the approximate view converges to the exact one.
  EXPECT_EQ(parallel->MetricsApprox().arrivals, proc->metrics().arrivals);
}

// --- fluid migration under sharding ---------------------------------------
//
// Fluid state: one FluidJiscStrategy per shard (the factory builds a fresh
// instance per shard engine, so the drain ledger is shard-local and never
// shared across threads). TSan gates this section like the rest of the file.

std::unique_ptr<StreamProcessor> MakeShardedFluid(
    const LogicalPlan& plan, const WindowSpec& windows, Sink* sink,
    int parallelism, ParallelExecutor::Options popts) {
  FluidOptions fluid;
  fluid.mode = FluidOptions::Mode::kFluid;
  fluid.batch_keys = 2;  // keep the per-shard drain alive across events
  Engine::Options eopts;
  eopts.maintain_period = 32;
  eopts.parallelism = parallelism;
  eopts.fluid = fluid;
  popts.queue_capacity = 8;
  popts.batch_size = 4;
  return MakeEngineProcessor(plan, windows, sink, EngineStrategyFactory(
      ProcessorKind::kJisc, fluid), eopts, popts);
}

std::vector<std::pair<std::string, uint64_t>> RunShardedFluid(
    int parallelism, ParallelExecutor::Options popts, CollectingSink* sink) {
  int streams = 4;
  uint64_t window = 40;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  LogicalPlan reversed = LogicalPlan::LeftDeep(
      WorstCaseOrder(IdentityOrder(streams)), OpKind::kHashJoin);
  auto proc = MakeShardedFluid(plan, WindowSpec::Uniform(streams, window),
                               sink, parallelism, popts);
  auto tuples = UniformWorkload(streams, window, 1200, /*seed=*/11);
  std::map<size_t, LogicalPlan> schedule{{500, reversed}, {900, plan}};
  for (size_t i = 0; i < tuples.size(); ++i) {
    auto it = schedule.find(i);
    if (it != schedule.end()) {
      EXPECT_TRUE(proc->RequestTransition(it->second).ok());
    }
    proc->Push(tuples[i]);
  }
  return proc->metrics().NamedCounters();  // quiesces all shards
}

TEST(ParallelFluidTest, FourShardFluidMatchesSingleThreadedOracle) {
  // Output/retraction multisets are the cross-parallelism invariant;
  // aggregated counters are not (count-window expiry is per shard, so even
  // all-at-once runs charge differently at different shard counts).
  CollectingSink oracle_sink;
  RunShardedFluid(1, ParallelExecutor::Options(), &oracle_sink);
  CollectingSink sharded_sink;
  RunShardedFluid(4, ParallelExecutor::Options(), &sharded_sink);
  EXPECT_EQ(IdentityMultiset(sharded_sink.outputs()),
            IdentityMultiset(oracle_sink.outputs()));
  EXPECT_EQ(IdentityMultiset(sharded_sink.retractions()),
            IdentityMultiset(oracle_sink.retractions()));
  EXPECT_GT(sharded_sink.outputs().size(), 0u);
}

TEST(ParallelFluidTest, RepeatedShardedFluidRunsAreDeterministic) {
  CollectingSink sink1;
  auto run1 = RunShardedFluid(4, ParallelExecutor::Options(), &sink1);
  CollectingSink sink2;
  auto run2 = RunShardedFluid(4, ParallelExecutor::Options(), &sink2);
  EXPECT_EQ(run1, run2);
  EXPECT_EQ(IdentityMultiset(sink1.outputs()),
            IdentityMultiset(sink2.outputs()));
}

TEST(ParallelFluidTest, StragglerShardDoesNotPerturbFluidCounters) {
  // A wall-clock straggler fault changes thread interleaving, not work:
  // the faulted fluid run's deterministic counters and output multiset
  // match the clean run's exactly.
  CollectingSink clean_sink;
  auto clean = RunShardedFluid(4, ParallelExecutor::Options(), &clean_sink);
  ParallelExecutor::Options faulted_opts;
  faulted_opts.straggler_shard = 2;
  faulted_opts.straggler_stall_ns = 200000;  // 0.2 ms
  faulted_opts.straggler_stall_every = 64;
  CollectingSink faulted_sink;
  auto faulted = RunShardedFluid(4, faulted_opts, &faulted_sink);
  EXPECT_EQ(clean, faulted);
  EXPECT_EQ(IdentityMultiset(clean_sink.outputs()),
            IdentityMultiset(faulted_sink.outputs()));
}

TEST(ParallelExecutorTest, BackpressureSurvivesTinyQueues) {
  int streams = 3;
  uint64_t window = 25;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  Engine::Options eopts;
  eopts.parallelism = 8;
  ParallelExecutor::Options popts;
  popts.queue_capacity = 2;  // maximal contention on the feeds
  popts.batch_size = 1;
  CountingSink sink;
  auto proc = MakeEngineProcessor(
      plan, WindowSpec::Uniform(streams, window), &sink,
      [] { return MakeJiscStrategy(); }, eopts, popts);
  auto tuples = UniformWorkload(streams, window, 4000, /*seed=*/13);
  for (const BaseTuple& t : tuples) proc->Push(t);
  EXPECT_EQ(proc->metrics().arrivals, tuples.size());
}

}  // namespace
}  // namespace jisc
