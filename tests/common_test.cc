#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/env.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"

namespace jisc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad plan");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad plan");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad plan");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  StatusOr<int> e(Status::NotFound("x"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.UniformU64(7), 7u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng r(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double d = r.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(13);
  EXPECT_FALSE(r.Bernoulli(0.0));
  EXPECT_TRUE(r.Bernoulli(1.0));
}

TEST(RngTest, ShufflePreservesElements) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, UniformWhenSIsZero) {
  ZipfDistribution z(10, 0);
  Rng r(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.Sample(&r)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(ZipfTest, SkewFavorsSmallRanks) {
  ZipfDistribution z(100, 1.2);
  Rng r(3);
  int first = 0, total = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = z.Sample(&r);
    if (v == 0) ++first;
    ++total;
  }
  EXPECT_GT(first, total / 10);  // rank 0 dominates under s=1.2
}

// The triangular swap distribution of Section 5.2: gap d has probability
// proportional to (n-d)/d.
TEST(TriangularSwapTest, GapProbabilitiesMatchFormula) {
  const int n = 10;
  TriangularSwapDistribution dist(n);
  double hn = 0;
  for (int r = 1; r <= n; ++r) hn += 1.0 / r;
  // alpha_n of Eq. (2): 1 / (n*H_n - n).
  double alpha = 1.0 / (n * hn - n);
  double total = 0;
  for (int d = 1; d <= n - 1; ++d) {
    double expect = (n - d) * alpha / d;
    EXPECT_NEAR(dist.GapProbability(d), expect, 1e-12) << "gap " << d;
    total += dist.GapProbability(d);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TriangularSwapTest, SamplesRespectOrderAndRange) {
  TriangularSwapDistribution dist(8);
  Rng r(21);
  for (int i = 0; i < 5000; ++i) {
    auto [a, b] = dist.Sample(&r);
    EXPECT_GE(a, 1);
    EXPECT_LT(a, b);
    EXPECT_LE(b, 8);
  }
}

TEST(TriangularSwapTest, EmpiricalGapFrequencies) {
  const int n = 6;
  TriangularSwapDistribution dist(n);
  Rng r(31);
  std::vector<int> counts(n, 0);
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    auto [a, b] = dist.Sample(&r);
    ++counts[b - a];
  }
  for (int d = 1; d <= n - 1; ++d) {
    double freq = static_cast<double>(counts[d]) / kSamples;
    EXPECT_NEAR(freq, dist.GapProbability(d), 0.01) << "gap " << d;
  }
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

// The histogram moved to the observability layer (obs/histogram.h) and its
// tests moved with it: tests/histogram_test.cc holds the golden-quantile,
// merge-associativity, overflow and concurrency batteries.

TEST(ThroughputSeriesTest, BucketsByLogicalTime) {
  ThroughputSeries ts(10);
  ts.Record(0);
  ts.Record(9);
  ts.Record(10);
  ts.Record(25, 5);
  ASSERT_EQ(ts.buckets().size(), 3u);
  EXPECT_EQ(ts.buckets()[0], 2u);
  EXPECT_EQ(ts.buckets()[1], 1u);
  EXPECT_EQ(ts.buckets()[2], 5u);
}

TEST(HashTest, MixU64SpreadsSequentialKeys) {
  std::set<uint64_t> top;
  for (uint64_t i = 0; i < 1000; ++i) top.insert(MixU64(i) >> 52);
  EXPECT_GT(top.size(), 500u);  // high bits well distributed
}

TEST(HashTest, Fnv1aDiffersOnContent) {
  EXPECT_NE(Fnv1a("abc", 3), Fnv1a("abd", 3));
  EXPECT_EQ(Fnv1a("abc", 3), Fnv1a("abc", 3));
}

TEST(BytesTest, RoundTrip) {
  ByteWriter w;
  w.PutU64(42);
  w.PutI64(-7);
  w.PutString("hello");
  w.PutU64(~0ULL);
  std::string data = w.Take();
  ByteReader r(data);
  uint64_t u = 0;
  int64_t i = 0;
  std::string str;
  ASSERT_TRUE(r.GetU64(&u).ok());
  EXPECT_EQ(u, 42u);
  ASSERT_TRUE(r.GetI64(&i).ok());
  EXPECT_EQ(i, -7);
  ASSERT_TRUE(r.GetString(&str).ok());
  EXPECT_EQ(str, "hello");
  ASSERT_TRUE(r.GetU64(&u).ok());
  EXPECT_EQ(u, ~0ULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncationDetected) {
  ByteWriter w;
  w.PutString("abcdef");
  std::string data = w.Take();
  std::string cut = data.substr(0, data.size() - 2);
  ByteReader r(cut);
  std::string out;
  EXPECT_FALSE(r.GetString(&out).ok());
  std::string three = "abc";
  ByteReader r2(three);
  uint64_t u = 0;
  EXPECT_FALSE(r2.GetU64(&u).ok());
}

TEST(EnvTest, ParsesAndDefaults) {
  ::setenv("JISC_TEST_ENV_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("JISC_TEST_ENV_D", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(GetEnvDouble("JISC_TEST_ENV_MISSING", 1.5), 1.5);
  ::setenv("JISC_TEST_ENV_I", "42", 1);
  EXPECT_EQ(GetEnvInt("JISC_TEST_ENV_I", 0), 42);
  ::setenv("JISC_TEST_ENV_BAD", "xyz", 1);
  EXPECT_EQ(GetEnvInt("JISC_TEST_ENV_BAD", 9), 9);
}

}  // namespace
}  // namespace jisc
