// Time-based sliding windows (extension beyond the paper's count-based
// experiments): eviction semantics, migration-neutrality, and equivalence
// against the reference under JISC transitions.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "migration/moving_state.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;

BaseTuple Mk(StreamId stream, JoinKey key, Seq seq, uint64_t ts) {
  BaseTuple b;
  b.stream = stream;
  b.key = key;
  b.seq = seq;
  b.ts = ts;
  return b;
}

TEST(TimeWindowTest, SpecConstruction) {
  WindowSpec w = WindowSpec::UniformTime(3, 50);
  EXPECT_TRUE(w.time_based());
  EXPECT_EQ(w.SizeFor(1), 50u);
  WindowSpec p = WindowSpec::PerStreamTime({10, 20});
  EXPECT_TRUE(p.time_based());
  EXPECT_EQ(p.SizeFor(1), 20u);
  EXPECT_FALSE(WindowSpec::Uniform(2, 5).time_based());
}

TEST(TimeWindowTest, OneArrivalCanExpireSeveralTuples) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::UniformTime(2, 10);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  // Three stream-0 tuples in a burst, then one far in the future.
  engine.Push(Mk(0, 1, 0, 100));
  engine.Push(Mk(0, 2, 1, 101));
  engine.Push(Mk(0, 3, 2, 102));
  EXPECT_EQ(engine.executor().scan(0)->window_fill(), 3u);
  engine.Push(Mk(0, 4, 3, 200));  // expires all three at once
  EXPECT_EQ(engine.executor().scan(0)->window_fill(), 1u);
}

TEST(TimeWindowTest, JoinVisibilityFollowsEventTime) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::UniformTime(2, 10);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  engine.Push(Mk(0, 7, 0, 100));
  engine.Push(Mk(1, 7, 1, 105));  // within 10 units -> joins
  EXPECT_EQ(sink.outputs().size(), 1u);
  // Stream 0's window only advances on stream-0 arrivals: a much later
  // stream-0 tuple expires the old one (and retracts the result).
  engine.Push(Mk(0, 7, 2, 150));
  EXPECT_EQ(sink.retractions().size(), 1u);
  // The new stream-0 tuple joins the (still live) stream-1 tuple: stream 1
  // received nothing newer, so its window has not advanced.
  EXPECT_EQ(sink.outputs().size(), 2u);
}

TEST(TimeWindowTest, WindowTravelsAcrossMigration) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep({2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::UniformTime(3, 16);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  SourceConfig cfg;
  cfg.num_streams = 3;
  cfg.key_domain = 8;
  SyntheticSource src(cfg);
  for (int i = 0; i < 60; ++i) engine.Push(src.Next());
  size_t fill = engine.executor().scan(0)->window_fill();
  ASSERT_TRUE(engine.RequestTransition(next).ok());
  EXPECT_EQ(engine.executor().scan(0)->window_fill(), fill);
  // Expiry keeps working post-migration.
  for (int i = 0; i < 60; ++i) engine.Push(src.Next());
  EXPECT_LE(engine.executor().scan(0)->window_fill(), 6u);  // 16/3 rounds
}

struct TimeScenario {
  bool moving_state;
  uint64_t stride;
};

class TimeWindowEquivalenceTest
    : public ::testing::TestWithParam<TimeScenario> {};

TEST_P(TimeWindowEquivalenceTest, TransitionsMatchReference) {
  const TimeScenario& ts = GetParam();
  const int n = 4;
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::UniformTime(n, 24 * ts.stride);
  CollectingSink sink;
  Engine engine(plan, windows, &sink,
                ts.moving_state ? MakeMovingStateStrategy()
                                : MakeJiscStrategy());
  NaiveJoinReference ref(n, windows);
  std::vector<Tuple> ref_out;
  std::vector<Tuple> ref_ret;
  SourceConfig cfg;
  cfg.num_streams = n;
  cfg.key_domain = 4;
  cfg.ts_stride = ts.stride;
  cfg.seed = 5;
  SyntheticSource src(cfg);
  Rng rng(3);
  auto order = testutil::IdentityOrder(n);
  for (int i = 0; i < 500; ++i) {
    if (i > 0 && i % 90 == 0) {
      order = RandomTriangularSwap(order, &rng);
      ASSERT_TRUE(engine
                      .RequestTransition(
                          LogicalPlan::LeftDeep(order, OpKind::kHashJoin))
                      .ok());
    }
    BaseTuple t = src.Next();
    engine.Push(t);
    ref.Push(t, &ref_out, &ref_ret);
  }
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out));
  EXPECT_EQ(IdentityMultiset(sink.retractions()),
            IdentityMultiset(ref_ret));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TimeWindowEquivalenceTest,
    ::testing::Values(TimeScenario{false, 1}, TimeScenario{false, 3},
                      TimeScenario{true, 1}),
    [](const ::testing::TestParamInfo<TimeScenario>& i) {
      std::string name =
          i.param.moving_state ? "MovingState" : "Jisc";
      return name + "_stride" + std::to_string(i.param.stride);
    });

}  // namespace
}  // namespace jisc
