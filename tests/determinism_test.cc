// Determinism: identical runs produce bit-identical work counters and
// output streams, across every processor — the property all benchmark
// work-unit comparisons rest on. Also covers the Sum/TopK sinks.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "obs/observability.h"
#include "obs/telemetry.h"
#include "plan/transitions.h"
#include "reference/naive_reference.h"
#include "tests/test_util.h"
#include "workload/factory.h"

namespace jisc {
namespace {

using testutil::IdentityOrder;
using testutil::UniformWorkload;

uint64_t OutputsHash(const std::vector<Tuple>& outputs) {
  auto ids = testutil::IdentityMultiset(outputs);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t x : ids) h = HashCombine(h, x);
  return h;
}

struct RunSignature {
  uint64_t output_hash;
  uint64_t work;
  uint64_t outputs;
};

// `obs` attaches the observability bundle (tracing + histograms); the
// tracing-on/off battery below requires it to change nothing observable.
RunSignature RunOnce(ProcessorKind kind, Observability* obs = nullptr) {
  auto order = IdentityOrder(4);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  BuiltProcessor built =
      MakeProcessor(kind, plan, windows, ThetaSpec(), /*parallelism=*/1, obs);
  auto tuples = UniformWorkload(4, 4, 500, /*seed=*/33);
  std::vector<Tuple> outputs;
  built.sink->SetCallback(
      [&](const Tuple& t, Stamp) { outputs.push_back(t); });
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i == 250) {
      EXPECT_TRUE(built.processor->RequestTransition(next).ok());
    }
    built.processor->Push(tuples[i]);
  }
  return RunSignature{OutputsHash(outputs),
                      built.processor->metrics().WorkUnits(),
                      built.processor->metrics().outputs};
}

class DeterminismTest : public ::testing::TestWithParam<ProcessorKind> {};

TEST_P(DeterminismTest, RepeatRunsAreBitIdentical) {
  RunSignature a = RunOnce(GetParam());
  RunSignature b = RunOnce(GetParam());
  EXPECT_EQ(a.output_hash, b.output_hash);
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.outputs, b.outputs);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DeterminismTest,
    ::testing::Values(ProcessorKind::kJisc, ProcessorKind::kJiscFirstReceipt,
                      ProcessorKind::kMovingState,
                      ProcessorKind::kParallelTrack,
                      ProcessorKind::kHybridTrack, ProcessorKind::kCacq,
                      ProcessorKind::kMJoin, ProcessorKind::kStairsEager,
                      ProcessorKind::kStairsJisc),
    [](const ::testing::TestParamInfo<ProcessorKind>& info) {
      std::string name = ProcessorKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Attaching the observability bundle must not perturb execution: identical
// sink output and work counters with tracing on vs off. This is the
// guarantee that makes traces trustworthy — measuring doesn't change what
// is measured. Also checks the run actually produced telemetry where the
// processor supports it, so a silently-dropped wiring can't pass.
TEST_P(DeterminismTest, TracingOnOffIsByteIdentical) {
  RunSignature off = RunOnce(GetParam());
  Observability obs;
  obs.options.record_service_times = true;
  RunSignature on = RunOnce(GetParam(), &obs);
  EXPECT_EQ(on.output_hash, off.output_hash);
  EXPECT_EQ(on.work, off.work);
  EXPECT_EQ(on.outputs, off.outputs);
  // The engine-backed processors wire the bundle through; the eddy family
  // ignores it (documented in MakeProcessor), so only assert coverage for
  // kinds that claim it.
  switch (GetParam()) {
    case ProcessorKind::kJisc:
    case ProcessorKind::kJiscFirstReceipt:
    case ProcessorKind::kMovingState:
    case ProcessorKind::kParallelTrack:
    case ProcessorKind::kHybridTrack:
      EXPECT_GT(obs.output_delay_ns.count(), 0u);
      EXPECT_GT(obs.probe_ns.count(), 0u);
      EXPECT_FALSE(obs.trace.Snapshot().empty());
      break;
    default:
      break;
  }
}

// Same guarantee for the live telemetry plane: hot-path gauges (input,
// progress, state memory) change nothing observable, and the registry
// actually saw the run on the processors that wire it through.
TEST_P(DeterminismTest, TelemetryGaugesOnOffIsByteIdentical) {
  RunSignature off = RunOnce(GetParam());
  Observability::Options oopts;
  oopts.telemetry = true;
  Observability obs(oopts);
  RunSignature on = RunOnce(GetParam(), &obs);
  EXPECT_EQ(on.output_hash, off.output_hash);
  EXPECT_EQ(on.work, off.work);
  EXPECT_EQ(on.outputs, off.outputs);
  // Gauge coverage holds for the Engine-backed processors; ParallelTrack
  // and HybridTrack run their own dual-track pipelines outside the Engine
  // (they record traces/histograms but no engine gauges), and the eddy
  // family ignores obs entirely.
  switch (GetParam()) {
    case ProcessorKind::kJisc:
    case ProcessorKind::kJiscFirstReceipt:
    case ProcessorKind::kMovingState: {
      ASSERT_NE(obs.telemetry, nullptr);
      EXPECT_GT(obs.telemetry->input_events(), 0u);
      TelemetryTrackSample s = obs.telemetry->SampleTrack(0);
      EXPECT_GT(s.progress_events, 0u);
      EXPECT_GT(s.state_memory_bytes, 0u);
      break;
    }
    default:
      break;
  }
}

// --- fluid migration battery (migration/fluid_scheduler.h) ---
//
// The same three guarantees with fluid pacing on: batched carryover is
// budgeted in deterministic work units (never wall clock), so repeat runs
// are bit-identical, and the fluid observability surface (fluid-batch /
// fluid-yield trace spans, the migration-backlog gauge) must not perturb
// what it observes.

RunSignature RunOnceFluid(ProcessorKind kind, Observability* obs = nullptr) {
  auto order = IdentityOrder(4);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  FluidOptions fluid;
  fluid.mode = FluidOptions::Mode::kFluid;
  fluid.batch_keys = 3;
  BuiltProcessor built =
      MakeProcessor(kind, plan, windows, ThetaSpec(), /*parallelism=*/1, obs,
                    ParallelExecutor::Options(), IngressGuard::Options(),
                    fluid);
  auto tuples = UniformWorkload(4, 4, 500, /*seed=*/33);
  std::vector<Tuple> outputs;
  built.sink->SetCallback(
      [&](const Tuple& t, Stamp) { outputs.push_back(t); });
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i == 250) {
      EXPECT_TRUE(built.processor->RequestTransition(next).ok());
    }
    built.processor->Push(tuples[i]);
  }
  return RunSignature{OutputsHash(outputs),
                      built.processor->metrics().WorkUnits(),
                      built.processor->metrics().outputs};
}

class FluidDeterminismTest : public ::testing::TestWithParam<ProcessorKind> {
};

TEST_P(FluidDeterminismTest, RepeatRunsAreBitIdentical) {
  RunSignature a = RunOnceFluid(GetParam());
  RunSignature b = RunOnceFluid(GetParam());
  EXPECT_EQ(a.output_hash, b.output_hash);
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST_P(FluidDeterminismTest, TracingOnOffIsByteIdentical) {
  RunSignature off = RunOnceFluid(GetParam());
  Observability obs;
  obs.options.record_service_times = true;
  RunSignature on = RunOnceFluid(GetParam(), &obs);
  EXPECT_EQ(on.output_hash, off.output_hash);
  EXPECT_EQ(on.work, off.work);
  EXPECT_EQ(on.outputs, off.outputs);
}

TEST_P(FluidDeterminismTest, TelemetryGaugesOnOffIsByteIdentical) {
  RunSignature off = RunOnceFluid(GetParam());
  Observability::Options oopts;
  oopts.telemetry = true;
  Observability obs(oopts);
  RunSignature on = RunOnceFluid(GetParam(), &obs);
  EXPECT_EQ(on.output_hash, off.output_hash);
  EXPECT_EQ(on.work, off.work);
  EXPECT_EQ(on.outputs, off.outputs);
  // The drain finished, so the backlog gauge must have returned to zero on
  // the processors that publish it.
  if (obs.telemetry != nullptr && GetParam() != ProcessorKind::kParallelTrack) {
    EXPECT_EQ(obs.telemetry->SampleTrack(0).migration_backlog, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FluidKinds, FluidDeterminismTest,
    ::testing::Values(ProcessorKind::kJisc, ProcessorKind::kJiscFirstReceipt,
                      ProcessorKind::kMovingState,
                      ProcessorKind::kParallelTrack,
                      ProcessorKind::kHybridTrack),
    [](const ::testing::TestParamInfo<ProcessorKind>& info) {
      std::string name = ProcessorKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// All strategies agree with each other on the output multiset (pairwise
// cross-check on top of the reference-based equivalence suite).
TEST(DeterminismTest, AllStrategiesAgree) {
  uint64_t expected = RunOnce(ProcessorKind::kJisc).output_hash;
  for (ProcessorKind kind :
       {ProcessorKind::kMovingState, ProcessorKind::kParallelTrack,
        ProcessorKind::kHybridTrack, ProcessorKind::kCacq,
        ProcessorKind::kMJoin, ProcessorKind::kStairsEager,
        ProcessorKind::kStairsJisc}) {
    EXPECT_EQ(RunOnce(kind).output_hash, expected)
        << ProcessorKindName(kind);
  }
}

TEST(AggSinkTest, SumTracksReference) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 6);
  SumAggregateSink sum;
  Engine engine(plan, windows, &sum, MakeJiscStrategy());
  NaiveJoinReference ref(2, windows);
  auto tuples = UniformWorkload(2, 3, 200);
  for (const auto& t : tuples) {
    engine.Push(t);
    ref.Push(t, nullptr, nullptr);
  }
  int64_t expect = 0;
  for (const Tuple& t : ref.CurrentResult()) {
    for (const BaseTuple& p : t.parts()) expect += p.payload;
  }
  EXPECT_EQ(sum.sum(), expect);
}

TEST(AggSinkTest, TopKeysAcrossTransition) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep({2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 9);
  TopKeysSink topk;
  Engine engine(plan, windows, &topk, MakeJiscStrategy());
  NaiveJoinReference ref(3, windows);
  auto tuples = UniformWorkload(3, 3, 300);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i == 150) ASSERT_TRUE(engine.RequestTransition(next).ok());
    engine.Push(tuples[i]);
    ref.Push(tuples[i], nullptr, nullptr);
  }
  std::map<JoinKey, int64_t> expect;
  for (const Tuple& t : ref.CurrentResult()) expect[t.key()] += 1;
  EXPECT_EQ(topk.distinct_keys(), expect.size());
  auto top = topk.TopK(2);
  for (const auto& [key, count] : top) {
    EXPECT_EQ(expect.at(key), count);
  }
}

}  // namespace
}  // namespace jisc
