// The strongest migration property test: JISC transitions between
// arbitrary random tree shapes (bushy <-> bushy <-> left-deep), outputs
// checked against the brute-force reference. Plus lottery-routing CACQ
// equivalence.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "eddy/cacq.h"
#include "migration/moving_state.h"
#include "plan/plan_text.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

struct TreeFuzzParam {
  uint64_t seed;
  bool moving_state;
};

class RandomTreeMigrationTest
    : public ::testing::TestWithParam<TreeFuzzParam> {};

TEST_P(RandomTreeMigrationTest, ArbitraryShapesMatchReference) {
  const TreeFuzzParam& fp = GetParam();
  Rng rng(fp.seed * 7919 + 3);
  int n = 4 + static_cast<int>(rng.UniformU64(3));  // 4..6 streams
  uint64_t window = 4 + rng.UniformU64(5);
  uint64_t domain = 2 + rng.UniformU64(4);
  auto streams = IdentityOrder(n);
  LogicalPlan plan = RandomPlanTree(streams, OpKind::kHashJoin, &rng);
  WindowSpec windows = WindowSpec::Uniform(n, window);
  CollectingSink sink;
  Engine::Options eopts;
  eopts.maintain_period = 16;
  Engine engine(plan, windows, &sink,
                fp.moving_state ? MakeMovingStateStrategy()
                                : MakeJiscStrategy(),
                eopts);
  NaiveJoinReference ref(n, windows);
  std::vector<Tuple> ref_out;
  std::vector<Tuple> ref_ret;
  auto tuples = UniformWorkload(n, domain, 500, fp.seed);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0 && i % 60 == 0) {
      LogicalPlan next = RandomPlanTree(streams, OpKind::kHashJoin, &rng);
      ASSERT_TRUE(engine.RequestTransition(next).ok())
          << next.ToString();
    }
    engine.Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, &ref_ret);
  }
  EXPECT_EQ(IdentityMultiset(sink.outputs()), IdentityMultiset(ref_out))
      << "seed " << fp.seed;
  EXPECT_EQ(IdentityMultiset(sink.retractions()), IdentityMultiset(ref_ret))
      << "seed " << fp.seed;
}

std::vector<TreeFuzzParam> TreeParams() {
  std::vector<TreeFuzzParam> out;
  for (uint64_t s = 1; s <= 10; ++s) out.push_back({s, s % 4 == 0});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomTreeMigrationTest, ::testing::ValuesIn(TreeParams()),
    [](const ::testing::TestParamInfo<TreeFuzzParam>& info) {
      return (info.param.moving_state ? std::string("MovingState_seed")
                                      : std::string("Jisc_seed")) +
             std::to_string(info.param.seed);
    });

TEST(CacqLotteryTest, OutputMatchesFixedPriority) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 6);
  auto tuples = UniformWorkload(4, 4, 500);
  CollectingSink fixed_sink;
  CacqExecutor fixed(plan, windows, &fixed_sink,
                     CacqExecutor::RoutingPolicy::kFixedPriority);
  CollectingSink lottery_sink;
  CacqExecutor lottery(plan, windows, &lottery_sink,
                       CacqExecutor::RoutingPolicy::kLottery);
  for (const auto& t : tuples) {
    fixed.Push(t);
    lottery.Push(t);
  }
  // Routing affects cost, never output.
  EXPECT_EQ(IdentityMultiset(fixed_sink.outputs()),
            IdentityMultiset(lottery_sink.outputs()));
}

TEST(CacqLotteryTest, SelectiveSteMsEarnTickets) {
  // Stream 2 never matches (disjoint keys): its SteM disqualifies almost
  // every probe and must accumulate tickets.
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CollectingSink sink;
  CacqExecutor cacq(plan, windows, &sink,
                    CacqExecutor::RoutingPolicy::kLottery);
  Seq seq = 0;
  for (int round = 0; round < 300; ++round) {
    BaseTuple a{.stream = 0, .key = 1, .payload = 0, .seq = seq++};
    BaseTuple b{.stream = 1, .key = 1, .payload = 0, .seq = seq++};
    BaseTuple c{.stream = 2, .key = 999, .payload = 0, .seq = seq++};
    cacq.Push(a);
    cacq.Push(b);
    cacq.Push(c);
  }
  EXPECT_TRUE(sink.outputs().empty());  // stream 2 blocks everything
  EXPECT_GT(cacq.tickets(2), cacq.tickets(1));
}

}  // namespace
}  // namespace jisc
